package collect

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/state"
	"repro/internal/topk"
	"repro/internal/wal"
)

// This file is the interactive mining tier: the collection server hosts
// top-k mining sessions, each a server-side topk.Planner driven round by
// round by untrusted clients. The protocol is the paper's iterative scheme
// made deployable: the server broadcasts a shrinking candidate space, each
// user group answers exactly one round, the round seals automatically when
// its quota of reports is in, and the final round yields the per-class
// rankings.
//
//	POST   /topk/sessions               create a session (topk.SessionParams)
//	GET    /topk/sessions/{id}          session info (attach/resume)
//	DELETE /topk/sessions/{id}          evict a session, freeing its slot
//	GET    /topk/sessions/{id}/round    live round broadcast (topk.RoundConfig)
//	POST   /topk/sessions/{id}/reports  batch of topk.RoundReports (JSON array
//	                                    or NDJSON; sealed rounds answer 410
//	                                    with the live round index)
//	GET    /topk/sessions/{id}/result   per-class rankings once done
//
// Sessions are deterministic functions of their params and the absorbed
// reports, so durability is the same write-ahead discipline as frequency
// ingestion: creates and accepted report batches are logged before they
// touch a planner, and compaction folds the log into one snapshot of every
// session's marshaled state (an internal/state envelope per session). A
// restarted server replays snapshot + tail and resumes mid-flight sessions
// to bit-identical results.

// DefaultMaxTopKSessions caps concurrently tracked sessions (open and
// completed-but-unqueried); each holds candidate-space state proportional
// to its item domain.
const DefaultMaxTopKSessions = 64

// TopKOptions configures the interactive mining tier.
type TopKOptions struct {
	// MaxSessions caps tracked sessions; creates beyond it are answered
	// with 429. <1 means DefaultMaxTopKSessions.
	MaxSessions int
}

// WithTopKSessions enables the /topk/sessions endpoints. On a WAL-backed
// server (WithWAL) sessions get their own log under <dir>/topk with the
// same sync options, so in-flight sessions survive restarts.
func WithTopKSessions(o TopKOptions) ServerOption {
	return func(s *Server) {
		if o.MaxSessions < 1 {
			o.MaxSessions = DefaultMaxTopKSessions
		}
		s.topk = &sessionHub{
			sessions:    make(map[string]*liveSession),
			maxSessions: o.MaxSessions,
		}
	}
}

// liveSession is one hosted mining session. Two locks split its state by
// lifetime: mu serializes planner access (round seals, snapshots, the
// done-state reads), while roundMu guards the lane pointer — the live
// round's shared ingest state. Rounds are interlocked (every report both
// validates against and mutates the live round), but within one round
// absorption is associative, so report batches only take roundMu.RLock plus
// one shard lock and never touch the planner; the seal takes roundMu.Lock,
// waits out in-flight batches, and merges the shards exactly once.
//
// Lock order: hub.ingestMu → roundMu → hub.mu → mu. position() and the
// seal take roundMu before mu; nothing takes them in the other order.
type liveSession struct {
	mu sync.Mutex
	id string
	pl *topk.Planner

	// roundMu guards lane and deleted. Report handlers hold the read side
	// from the lane lookup through their WAL append and shard apply, which
	// is what makes a round's WAL records precede its seal — and any
	// deletion record — in log order.
	roundMu sync.RWMutex
	// lane is the live round's ingest lane; nil once the session is done.
	lane *topkLane
	// deleted marks a session evicted while a report handler already held
	// a reference: the handler must not append WAL records for it after
	// its deletion record (replay order would break).
	deleted bool
}

// topkLane is one round's shared ingest state: the layout snapshot reports
// validate against without the planner, the remaining-quota gate, and the
// shard partials they absorb into. A lane is immutable except through its
// atomics and shard locks, and is replaced wholesale at the seal.
type topkLane struct {
	round  int
	quota  int
	layout *topk.RoundLayout

	// remaining is the round's unreserved quota. Reservations are taken
	// before the WAL append (and returned on its failure), so the round
	// never over-admits: whoever drives it to zero triggers the seal.
	remaining atomic.Int64
	// next round-robins batches over the shards.
	next   atomic.Uint64
	shards []*topkShard
}

// topkShard is one absorb shard: a partial aggregate behind its own lock,
// so concurrent batches on one session contend 1/shardN of the time.
type topkShard struct {
	mu   sync.Mutex
	part *topk.RoundPartial
}

// reserveUpTo takes up to n reports of the remaining quota and returns how
// many it got — the JSON path's reservation, where a batch's tail past the
// seal is rejected per item.
func (l *topkLane) reserveUpTo(n int64) int64 {
	for {
		r := l.remaining.Load()
		take := min(r, n)
		if take <= 0 {
			return 0
		}
		if l.remaining.CompareAndSwap(r, r-take) {
			return take
		}
	}
}

// reserveExact takes exactly n or nothing — the binary path's reservation,
// where a frame applies whole or not at all.
func (l *topkLane) reserveExact(n int64) bool {
	for {
		r := l.remaining.Load()
		if r < n {
			return false
		}
		if l.remaining.CompareAndSwap(r, r-n) {
			return true
		}
	}
}

// unreserve returns a failed reservation (admission or WAL append refused
// the reports after the quota was taken).
func (l *topkLane) unreserve(n int64) { l.remaining.Add(n) }

// installLane builds the live round's lane from the planner, or clears it
// once the session is done. Caller holds roundMu exclusively and mu (or has
// exclusive access during startup), with the planner advanced past any
// empty rounds first.
func (sess *liveSession) installLane(shardN int) {
	layout, ok := sess.pl.Layout()
	if !ok {
		sess.lane = nil
		return
	}
	lane := &topkLane{round: layout.Round, quota: sess.pl.Quota(), layout: layout}
	// A snapshot-restored session resumes mid-round: the lane starts with
	// the quota that is actually still unfilled.
	lane.remaining.Store(int64(max0(lane.quota - sess.pl.Received())))
	lane.shards = make([]*topkShard, shardN)
	for i := range lane.shards {
		lane.shards[i] = &topkShard{part: topk.NewRoundPartial(layout)}
	}
	sess.lane = lane
}

// position snapshots the session's live coordinates for acks, broadcasts
// and stats. Mid-round the lane is ahead of the planner (reports rest in
// shard partials until the seal), so its reservation count is the received
// figure clients should see. Caller must not hold roundMu or mu.
func (sess *liveSession) position() (round, received, quota int, done bool) {
	sess.roundMu.RLock()
	lane := sess.lane
	sess.roundMu.RUnlock()
	sess.mu.Lock()
	round, received, quota, done = sess.pl.Round(), sess.pl.Received(), sess.pl.Quota(), sess.pl.Done()
	sess.mu.Unlock()
	if lane != nil && lane.round == round {
		quota = lane.quota
		received = lane.quota - int(lane.remaining.Load())
	}
	return round, received, quota, done
}

// sessionHub owns the hosted sessions and their write-ahead log.
type sessionHub struct {
	// ingestMu orders session mutations (reader side: creates, report
	// batches) against whole-state transitions (writer side: compaction),
	// so a WAL append and its planner apply are atomic with respect to
	// the segment boundary a compaction snapshot covers. Per-session
	// locks nest inside it.
	ingestMu sync.RWMutex

	mu       sync.Mutex // guards sessions, order, nextID, reserved
	sessions map[string]*liveSession
	order    []string // creation order, for deterministic stats and snapshots
	nextID   uint64
	reserved int // creates past the cap check but before install

	maxSessions  int
	shardN       int // absorb shards per session lane (the server's shard count)
	log          *wal.Log
	compactAfter int64
	compacting   atomic.Bool

	// Accepted-report totals by wire format, advanced at the same handler
	// sites as the mcim_ingest_reports_total series so /stats and /metrics
	// agree exactly (replay excluded).
	reportsJSON   atomic.Int64
	reportsBinary atomic.Int64

	logger *obs.Logger
	rounds *obs.Counter // rounds sealed by live ingestion (replay excluded)
	stale  *obs.Counter // whole batches answered 410 Gone
}

// counts snapshots the tracked-session totals for the gauges: every session
// currently in the map, and the subset still mid-protocol.
func (h *sessionHub) counts() (total, open int) {
	h.mu.Lock()
	sessions := make([]*liveSession, 0, len(h.sessions))
	for _, sess := range h.sessions {
		sessions = append(sessions, sess)
	}
	h.mu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		done := sess.pl.Done()
		sess.mu.Unlock()
		if !done {
			open++
		}
	}
	return len(sessions), open
}

// Session WAL record types (first byte of every record).
const (
	// recSessionCreate frames a JSON wireSessionCreate.
	recSessionCreate = 'C'
	// recSessionReports frames a JSON wireSessionReports of accepted
	// round reports.
	recSessionReports = 'T'
	// recSessionDelete frames a JSON wireSessionDelete.
	recSessionDelete = 'D'
	// recSessionBinaryFrame frames an accepted binary round-report frame,
	// raw: the record is the session-tier MCBW frame exactly as it arrived
	// (self-addressed and CRC-sealed), re-validated on replay.
	recSessionBinaryFrame = 'W'
)

// wireSessionDelete is the WAL form of a session eviction.
type wireSessionDelete struct {
	ID string `json:"id"`
}

// wireSessionCreate is the WAL form of a session creation.
type wireSessionCreate struct {
	ID     string             `json:"id"`
	Params topk.SessionParams `json:"params"`
}

// wireSessionReports is the WAL form of an accepted report batch.
type wireSessionReports struct {
	ID      string             `json:"id"`
	Reports []topk.RoundReport `json:"reports"`
}

// hubFingerprint tags the hub's compaction snapshots.
const hubFingerprint = "mcim/topk-hub/v1"

// hubSnapshot is the gob payload of a hub compaction snapshot: every
// session's marshaled planner (itself an internal/state envelope), in
// creation order.
type hubSnapshot struct {
	NextID   uint64
	Sessions []hubSessionSnapshot
}

type hubSessionSnapshot struct {
	ID    string
	State []byte
}

// openTopKWAL opens and replays the session log. Called from NewServer
// before the handler is exposed, so no locking is needed.
func (s *Server) openTopKWAL() error {
	h := s.topk
	h.compactAfter = s.compactAfter
	opts := s.walOpts
	wm, replayG := NewWALMetrics(s.obs, "topk")
	opts.Metrics = wm
	l, err := wal.Open(filepath.Join(s.walDir, "topk"), opts)
	if err != nil {
		return fmt.Errorf("collect: topk sessions: %w", err)
	}
	// Session rounds are ordered (absorb order is the round order), so this
	// log always replays sequentially regardless of WithWALReplayWorkers.
	s.obs.Gauge(walReplayWorkersName, walReplayWorkersHelp, "log", "topk").Set(1)
	replayStart := time.Now()
	err = l.Replay(h.installSnapshot, h.replayRecord)
	if err != nil {
		l.Close()
		return err
	}
	replayG.Set(time.Since(replayStart).Seconds())
	h.log = l
	// Replay applied reports straight into the planners (single writer, no
	// lanes); stand up the live rounds' ingest lanes now, before handlers
	// run.
	for _, sess := range h.sessions {
		advanceOnQuota(sess.pl)
		sess.installLane(h.shardN)
	}
	return nil
}

// installSnapshot restores every session from a compaction snapshot.
func (h *sessionHub) installSnapshot(snap []byte) error {
	fp, payload, err := state.Decode(snap)
	if err != nil {
		return fmt.Errorf("collect: topk snapshot: %w", err)
	}
	if fp != hubFingerprint {
		return fmt.Errorf("collect: topk snapshot fingerprint %q, want %q", fp, hubFingerprint)
	}
	var hs hubSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hs); err != nil {
		return fmt.Errorf("collect: topk snapshot: %w", err)
	}
	sessions := make(map[string]*liveSession, len(hs.Sessions))
	order := make([]string, 0, len(hs.Sessions))
	for _, ss := range hs.Sessions {
		pl, err := topk.UnmarshalSession(ss.State)
		if err != nil {
			return fmt.Errorf("collect: topk session %s: %w", ss.ID, err)
		}
		sessions[ss.ID] = &liveSession{id: ss.ID, pl: pl}
		order = append(order, ss.ID)
	}
	h.sessions, h.order, h.nextID = sessions, order, hs.NextID
	return nil
}

// replayRecord re-applies one session WAL record. Records were validated
// before they were written, so a record that fails to apply means the log
// is foreign or damaged — fail loudly, do not skip.
func (h *sessionHub) replayRecord(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("collect: empty topk wal record")
	}
	switch rec[0] {
	case recSessionCreate:
		var c wireSessionCreate
		if err := json.Unmarshal(rec[1:], &c); err != nil {
			return fmt.Errorf("collect: topk create record: %w", err)
		}
		if _, exists := h.sessions[c.ID]; exists {
			return fmt.Errorf("collect: topk create record for existing session %s", c.ID)
		}
		pl, err := topk.NewSession(c.Params)
		if err != nil {
			return fmt.Errorf("collect: topk create record: %w", err)
		}
		advanceEmptyRounds(pl)
		h.sessions[c.ID] = &liveSession{id: c.ID, pl: pl}
		h.order = append(h.order, c.ID)
		return nil
	case recSessionReports:
		var t wireSessionReports
		if err := json.Unmarshal(rec[1:], &t); err != nil {
			return fmt.Errorf("collect: topk reports record: %w", err)
		}
		sess, ok := h.sessions[t.ID]
		if !ok {
			return fmt.Errorf("collect: topk reports record for unknown session %s", t.ID)
		}
		for _, rep := range t.Reports {
			if err := sess.pl.Absorb(rep); err != nil {
				return fmt.Errorf("collect: topk reports record: %w", err)
			}
			advanceOnQuota(sess.pl)
		}
		return nil
	case recSessionBinaryFrame:
		// The record is the accepted frame verbatim: re-peek (CRC, header),
		// resolve the session it addresses itself to, and re-validate
		// against the live round before absorbing — a frame that no longer
		// applies means the log is foreign or damaged.
		f, err := topk.PeekRoundFrame(rec[1:])
		if err != nil {
			return fmt.Errorf("collect: topk binary record: %w", err)
		}
		sess, ok := h.sessions[string(f.SID)]
		if !ok {
			return fmt.Errorf("collect: topk binary record for unknown session %s", f.SID)
		}
		if err := sess.pl.AbsorbRoundFrame(f); err != nil {
			return fmt.Errorf("collect: topk binary record: %w", err)
		}
		advanceOnQuota(sess.pl)
		return nil
	case recSessionDelete:
		var d wireSessionDelete
		if err := json.Unmarshal(rec[1:], &d); err != nil {
			return fmt.Errorf("collect: topk delete record: %w", err)
		}
		if _, ok := h.sessions[d.ID]; !ok {
			return fmt.Errorf("collect: topk delete record for unknown session %s", d.ID)
		}
		h.removeLocked(d.ID)
		return nil
	default:
		return fmt.Errorf("collect: unknown topk wal record type %#x", rec[0])
	}
}

// advanceEmptyRounds advances past rounds with a zero quota (sessions
// planned for fewer users than rounds), which no report would ever seal.
func advanceEmptyRounds(pl *topk.Planner) {
	for !pl.Done() && pl.Quota() == 0 {
		if err := pl.Advance(); err != nil {
			return
		}
	}
}

// advanceOnQuota seals the live round once its quota is in, then skips any
// empty rounds behind it.
func advanceOnQuota(pl *topk.Planner) {
	if !pl.Done() && pl.Received() >= pl.Quota() {
		if err := pl.Advance(); err != nil {
			return
		}
		advanceEmptyRounds(pl)
	}
}

// sealSession seals the session's live round if its quota is fully in:
// waits out in-flight report batches (roundMu write side), merges every
// shard partial into the planner, advances it, and installs the next
// round's lane. Any handler that observes remaining == 0 calls this — the
// batch that took the last reservation and any batch that lost the race to
// it — and exactly one performs the work: latecomers find either a live
// lane with quota left or a done session, and return 0. Returns the rounds
// advanced (the handler's feed for the rounds counter; replay never comes
// through here). Caller holds ingestMu (either side) and must not hold
// roundMu or sess.mu.
func (h *sessionHub) sealSession(sess *liveSession) int64 {
	sess.roundMu.Lock()
	defer sess.roundMu.Unlock()
	lane := sess.lane
	if lane == nil || lane.remaining.Load() != 0 {
		return 0
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for _, sh := range lane.shards {
		// No batch can hold a shard lock here (they nest under
		// roundMu.RLock), but keep the discipline uniform.
		sh.mu.Lock()
		err := sess.pl.MergePartial(sh.part)
		sh.mu.Unlock()
		if err != nil {
			// Unreachable by the seal protocol (partials only ever hold the
			// lane's round); refuse to advance on a corrupt merge.
			h.logger.Error("topk shard merge failed", "session", sess.id, "err", err)
			return 0
		}
	}
	before := sess.pl.Round()
	advanceOnQuota(sess.pl)
	sess.installLane(h.shardN)
	return int64(sess.pl.Round() - before)
}

// drainPartialsLocked folds every session's shard partials into its
// planner, so a snapshot taken next marshals the complete mid-round state.
// Caller holds ingestMu exclusively (no batch is mid-flight, so reserved
// equals absorbed and the lanes' remaining counters stay consistent).
func (h *sessionHub) drainPartialsLocked() error {
	h.mu.Lock()
	sessions := make([]*liveSession, 0, len(h.sessions))
	for _, sess := range h.sessions {
		sessions = append(sessions, sess)
	}
	h.mu.Unlock()
	for _, sess := range sessions {
		sess.roundMu.Lock()
		lane := sess.lane
		sess.mu.Lock()
		var err error
		if lane != nil {
			for _, sh := range lane.shards {
				if err = sess.pl.MergePartial(sh.part); err != nil {
					break
				}
			}
		}
		sess.mu.Unlock()
		sess.roundMu.Unlock()
		if err != nil {
			return fmt.Errorf("collect: drain topk session %s: %w", sess.id, err)
		}
	}
	return nil
}

// maybeCompact folds the session log into a snapshot once enough record
// bytes accumulate past the last one. At most one compaction runs at a
// time; extra triggers are dropped.
func (h *sessionHub) maybeCompact() {
	if h.log == nil || h.log.BytesSinceSeal() < h.compactAfter {
		return
	}
	if !h.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer h.compacting.Store(false)
		if err := h.compact(); err != nil {
			// Mirrors Server.maybeCompact: compaction failures are loud
			// but non-fatal — the log keeps growing and replay still works.
			h.logger.Error("background wal compaction failed",
				"segments", h.log.Stats().Segments, "err", err)
		}
	}()
}

// compact quiesces session ingestion just long enough to roll the log and
// marshal every session, then seals the snapshot.
func (h *sessionHub) compact() error {
	h.ingestMu.Lock()
	cover, err := h.log.Roll()
	if err == nil {
		// Shard partials hold reports the planners haven't seen yet; fold
		// them in so the snapshot is the complete applied state. The lanes
		// stay installed — their reservation counters already match the
		// merged totals.
		err = h.drainPartialsLocked()
	}
	var snap []byte
	if err == nil {
		snap, err = h.snapshotLocked()
	}
	h.ingestMu.Unlock()
	if err != nil {
		return err
	}
	return h.log.Seal(cover, snap)
}

// snapshotLocked marshals every session in creation order. Caller holds
// ingestMu exclusively (no report is mid-apply).
func (h *sessionHub) snapshotLocked() ([]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := hubSnapshot{NextID: h.nextID}
	for _, id := range h.order {
		sess := h.sessions[id]
		sess.mu.Lock()
		blob, err := sess.pl.MarshalBinary()
		sess.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("collect: marshal topk session %s: %w", id, err)
		}
		hs.Sessions = append(hs.Sessions, hubSessionSnapshot{ID: id, State: blob})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(hs); err != nil {
		return nil, err
	}
	return state.Encode(hubFingerprint, buf.Bytes()), nil
}

// lookup returns the session by id.
func (h *sessionHub) lookup(id string) (*liveSession, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sess, ok := h.sessions[id]
	return sess, ok
}

// removeLocked drops a session from the map and the creation order.
// Caller holds h.mu (or, during replay, has exclusive access).
func (h *sessionHub) removeLocked(id string) {
	delete(h.sessions, id)
	for i, o := range h.order {
		if o == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// ---------------------------------------------------------------------------
// Wire types.
// ---------------------------------------------------------------------------

// WireTopKSessionInfo describes a hosted session: its normalized params,
// total round count, live position, and the report wire formats the server
// accepts on the reports endpoint.
type WireTopKSessionInfo struct {
	ID     string             `json:"id"`
	Params topk.SessionParams `json:"params"`
	Rounds int                `json:"rounds"`
	Round  int                `json:"round"`
	Done   bool               `json:"done"`
	Wire   []string           `json:"wire,omitempty"`
}

// WireTopKRound is the live round broadcast (or the done marker). Wire
// lists the report formats the server accepts, so clients negotiate the
// binary lane from the broadcast alone.
type WireTopKRound struct {
	Done     bool              `json:"done"`
	Received int               `json:"received"`
	Config   *topk.RoundConfig `json:"config,omitempty"`
	Wire     []string          `json:"wire,omitempty"`
}

// WireTopKAck acknowledges a round-report batch. Round and Received are
// the live position after processing, so clients learn immediately when
// their batch sealed the round. A batch rejected entirely because its
// round already sealed is answered with status 410 and this same body.
type WireTopKAck struct {
	Accepted        int             `json:"accepted"`
	Rejected        int             `json:"rejected"`
	Round           int             `json:"round"`
	Received        int             `json:"received"`
	Done            bool            `json:"done"`
	Errors          []WireItemError `json:"errors,omitempty"`
	ErrorsTruncated bool            `json:"errors_truncated,omitempty"`
}

// WireTopKStats is the /stats slice of the interactive mining tier.
type WireTopKStats struct {
	// Sessions counts tracked sessions; Open those still mid-protocol.
	Sessions int `json:"sessions"`
	Open     int `json:"open"`
	// ReportsJSON and ReportsBinary are accepted round reports by wire
	// format since startup (replay excluded) — the /stats twins of
	// mcim_ingest_reports_total{tier="topk"}.
	ReportsJSON   int64                 `json:"reports_json"`
	ReportsBinary int64                 `json:"reports_binary"`
	Detail        []WireTopKSessionStat `json:"detail,omitempty"`
}

// WireTopKSessionStat is one session's live position.
type WireTopKSessionStat struct {
	ID        string `json:"id"`
	Framework string `json:"framework"`
	Round     int    `json:"round"`
	Rounds    int    `json:"rounds"`
	Received  int    `json:"received"`
	Quota     int    `json:"quota"`
	Done      bool   `json:"done"`
}

// topkStats snapshots every session's position in creation order.
func (h *sessionHub) stats() *WireTopKStats {
	h.mu.Lock()
	order := append([]string(nil), h.order...)
	sessions := make([]*liveSession, 0, len(order))
	for _, id := range order {
		sessions = append(sessions, h.sessions[id])
	}
	h.mu.Unlock()
	st := &WireTopKStats{
		Sessions:      len(sessions),
		ReportsJSON:   h.reportsJSON.Load(),
		ReportsBinary: h.reportsBinary.Load(),
	}
	for _, sess := range sessions {
		round, received, quota, done := sess.position()
		sess.mu.Lock()
		framework, rounds := sess.pl.Params().Framework, sess.pl.Rounds()
		sess.mu.Unlock()
		stat := WireTopKSessionStat{
			ID:        sess.id,
			Framework: framework,
			Round:     round,
			Rounds:    rounds,
			Received:  received,
			Quota:     quota,
			Done:      done,
		}
		if !stat.Done {
			st.Open++
		}
		st.Detail = append(st.Detail, stat)
	}
	return st
}

// ---------------------------------------------------------------------------
// Handlers.
// ---------------------------------------------------------------------------

func sessionInfo(id string, pl *topk.Planner) WireTopKSessionInfo {
	return WireTopKSessionInfo{
		ID:     id,
		Params: pl.Params(),
		Rounds: pl.Rounds(),
		Round:  pl.Round(),
		Done:   pl.Done(),
		Wire:   wireFormats(),
	}
}

// handleTopKCreate creates a session from a topk.SessionParams body.
func (s *Server) handleTopKCreate(w http.ResponseWriter, r *http.Request) {
	h := s.topk
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var params topk.SessionParams
	if err := json.Unmarshal(body, &params); err != nil {
		http.Error(w, "decode session params: "+err.Error(), http.StatusBadRequest)
		return
	}
	pl, err := topk.NewSession(params)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The session must be answerable over the wire: the client half has to
	// accept the broadcast (domain caps, joint-domain bounds). Catch it at
	// creation, not when the first client fails.
	if cfg := pl.Config(); cfg != nil {
		if _, err := topk.NewRoundEncoder(cfg); err != nil {
			http.Error(w, "session is not servable: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	advanceEmptyRounds(pl)

	h.ingestMu.RLock()
	defer h.ingestMu.RUnlock()
	// The cap check and the slot claim are one critical section (reserved
	// bridges the WAL-append gap below), so concurrent creates cannot
	// overshoot maxSessions. Completed sessions are evicted with DELETE,
	// which frees their slot.
	h.mu.Lock()
	if len(h.sessions)+h.reserved >= h.maxSessions {
		h.mu.Unlock()
		http.Error(w, fmt.Sprintf("collect: session limit %d reached (DELETE finished sessions to free slots)",
			h.maxSessions), http.StatusTooManyRequests)
		return
	}
	h.reserved++
	h.nextID++
	id := fmt.Sprintf("s%06d", h.nextID)
	h.mu.Unlock()
	if h.log != nil {
		rec, err := json.Marshal(wireSessionCreate{ID: id, Params: pl.Params()})
		if err == nil {
			err = h.log.Append(append([]byte{recSessionCreate}, rec...))
		}
		if err != nil {
			h.mu.Lock()
			h.reserved--
			h.mu.Unlock()
			http.Error(w, "collect: wal append: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	sess := &liveSession{id: id, pl: pl}
	sess.installLane(h.shardN)
	h.mu.Lock()
	h.reserved--
	h.sessions[id] = sess
	h.order = append(h.order, id)
	h.mu.Unlock()
	writeJSON(w, sessionInfo(id, pl))
}

// handleTopKDelete evicts a session — the way finished (or abandoned)
// sessions release their slot under the MaxSessions cap. The eviction is
// write-ahead logged, so a restarted server does not resurrect it.
func (s *Server) handleTopKDelete(w http.ResponseWriter, r *http.Request) {
	h := s.topk
	sess, ok := s.topkSession(w, r)
	if !ok {
		return
	}
	h.ingestMu.RLock()
	defer h.ingestMu.RUnlock()
	// The write side of roundMu waits out in-flight report batches (they
	// hold the read side through their WAL appends), so no report record
	// for this session can land after its deletion record.
	sess.roundMu.Lock()
	defer sess.roundMu.Unlock()
	if sess.deleted {
		http.Error(w, fmt.Sprintf("collect: no session %q", sess.id), http.StatusNotFound)
		return
	}
	if h.log != nil {
		rec, err := json.Marshal(wireSessionDelete{ID: sess.id})
		if err == nil {
			err = h.log.Append(append([]byte{recSessionDelete}, rec...))
		}
		if err != nil {
			http.Error(w, "collect: wal append: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	sess.deleted = true
	h.mu.Lock()
	h.removeLocked(sess.id)
	h.mu.Unlock()
	writeJSON(w, map[string]string{"deleted": sess.id})
}

// topkSession resolves the {id} path segment, answering 404 itself.
func (s *Server) topkSession(w http.ResponseWriter, r *http.Request) (*liveSession, bool) {
	id := r.PathValue("id")
	sess, ok := s.topk.lookup(id)
	if !ok {
		http.Error(w, fmt.Sprintf("collect: no session %q", id), http.StatusNotFound)
		return nil, false
	}
	return sess, true
}

// handleTopKInfo describes an existing session — what a client that only
// holds the id (e.g. resuming after a server restart) attaches through.
func (s *Server) handleTopKInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.topkSession(w, r)
	if !ok {
		return
	}
	sess.mu.Lock()
	info := sessionInfo(sess.id, sess.pl)
	sess.mu.Unlock()
	writeJSON(w, info)
}

// handleTopKRound serves the live round broadcast.
func (s *Server) handleTopKRound(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.topkSession(w, r)
	if !ok {
		return
	}
	// Hold the round steady while building the broadcast: seals take
	// roundMu exclusively, so the config and the lane-derived received
	// figure describe the same round.
	sess.roundMu.RLock()
	lane := sess.lane
	sess.mu.Lock()
	out := WireTopKRound{
		Done:     sess.pl.Done(),
		Received: sess.pl.Received(),
		Config:   sess.pl.Config(),
		Wire:     wireFormats(),
	}
	sess.mu.Unlock()
	if lane != nil {
		out.Received = lane.quota - int(lane.remaining.Load())
	}
	sess.roundMu.RUnlock()
	writeJSON(w, out)
}

// handleTopKResult serves the final rankings; 409 until the session is
// done (the body names the live round so clients know how far along it is).
func (s *Server) handleTopKResult(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.topkSession(w, r)
	if !ok {
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	res, err := sess.pl.Result()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, res)
}

// ackAt builds an acknowledgement carrying the session's live position.
// Caller must not hold roundMu or sess.mu.
func ackAt(sess *liveSession, accepted, rejected int) WireTopKAck {
	round, received, _, done := sess.position()
	return WireTopKAck{
		Accepted: accepted,
		Rejected: rejected,
		Round:    round,
		Received: received,
		Done:     done,
	}
}

// writeStaleAck answers a whole-batch 410 Gone: the body is the regular
// ack, whose round index tells the client what is live now.
func (h *sessionHub) writeStaleAck(w http.ResponseWriter, ack WireTopKAck) {
	h.stale.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusGone)
	json.NewEncoder(w).Encode(ack) //nolint:errcheck — best-effort error body
}

// handleTopKReports ingests a batch of round reports — a JSON array or
// NDJSON under the same body cap and 413 behavior as /reports, or (by the
// BinaryContentType media type) one binary session frame. Reports land in
// the live round, which seals automatically when its quota is in — reports
// after the seal (in this batch or a later one) are rejected, and a batch
// rejected entirely for that reason is answered 410 Gone with the live
// round index.
//
// Concurrency: the handler validates against the lane's immutable layout
// snapshot, reserves quota with one atomic, and absorbs into one shard
// partial — the session mutex is never taken mid-round, so batches on one
// session proceed in parallel. Whoever observes the quota hit zero runs
// the seal (sealSession), which merges the shards into the planner exactly
// once; merged state is bit-identical to sequential absorption.
func (s *Server) handleTopKReports(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	h, m := s.topk, s.topkM
	sess, ok := s.topkSession(w, r)
	if !ok {
		return
	}
	body, release, ok := s.readBodyPooled(w, r, m)
	if !ok {
		return
	}
	defer release()
	m.bytes.Add(int64(len(body)))
	if isBinaryContentType(r.Header.Get("Content-Type")) {
		s.ingestTopKBinary(w, sess, body, start)
		return
	}
	items, itemErrs, droppedTail, err := decodeBatchItems[topk.RoundReport](body)
	if err != nil {
		m.rejectedDecode.Inc()
		http.Error(w, "decode batch: "+err.Error(), http.StatusBadRequest)
		return
	}

	h.ingestMu.RLock()
	sess.roundMu.RLock()
	if sess.deleted {
		// Evicted between lookup and lock: a report record appended now
		// would follow the deletion record on replay.
		sess.roundMu.RUnlock()
		h.ingestMu.RUnlock()
		http.Error(w, fmt.Sprintf("collect: no session %q", sess.id), http.StatusNotFound)
		return
	}
	lane := sess.lane
	// Pass 1 (read-only): classify against the lane's layout snapshot.
	// Acceptance is order-dependent only through the quota, settled below
	// by the reservation.
	accepted := make([]indexedItem[topk.RoundReport], 0, len(items))
	staleRejects := 0
	for _, it := range items {
		if lane == nil {
			staleRejects++
			itemErrs = append(itemErrs, WireItemError{Index: it.index, Error: topk.ErrSessionDone.Error()})
			continue
		}
		if cerr := lane.layout.CheckReport(it.report); cerr != nil {
			var rm *topk.RoundMismatchError
			if errors.As(cerr, &rm) {
				staleRejects++
			}
			itemErrs = append(itemErrs, WireItemError{Index: it.index, Error: cerr.Error()})
			continue
		}
		accepted = append(accepted, it)
	}
	// Reserve quota for as much of the batch as the round still has room
	// for; everything past the reservation is posting to a round this batch
	// (or a concurrent one) is sealing.
	take := 0
	if lane != nil && len(accepted) > 0 {
		take = int(lane.reserveUpTo(int64(len(accepted))))
	}
	for _, it := range accepted[take:] {
		staleRejects++
		itemErrs = append(itemErrs, WireItemError{Index: it.index,
			Error: fmt.Sprintf("topk: round %d sealed by this batch", lane.round)})
	}
	accepted = accepted[:take]
	// The round reports draw from the same server-wide rate bucket as the
	// other tiers; a refused batch left no trace (not logged, not absorbed,
	// reservation returned) and may be resubmitted after the hinted delay.
	if err := s.admitReports(len(accepted)); err != nil {
		if lane != nil {
			lane.unreserve(int64(take))
		}
		sess.roundMu.RUnlock()
		h.ingestMu.RUnlock()
		m.observeIngestError(err, len(accepted))
		writeIngestError(w, err)
		return
	}
	// Durability before application: the accepted reports are logged as
	// one record, so a crash replays exactly what was acknowledged.
	if h.log != nil && len(accepted) > 0 {
		reps := make([]topk.RoundReport, len(accepted))
		for i, it := range accepted {
			reps[i] = it.report
		}
		rec, err := json.Marshal(wireSessionReports{ID: sess.id, Reports: reps})
		if err == nil {
			err = h.log.Append(append([]byte{recSessionReports}, rec...))
		}
		if err != nil {
			lane.unreserve(int64(take))
			sess.roundMu.RUnlock()
			h.ingestMu.RUnlock()
			m.rejectedWAL.Add(int64(len(accepted)))
			http.Error(w, "collect: wal append: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	// Apply into one shard. Every accepted report passed CheckReport
	// against the same immutable layout the partial validates with, so
	// failures are impossible here.
	if len(accepted) > 0 {
		sh := lane.shards[lane.next.Add(1)%uint64(len(lane.shards))]
		sh.mu.Lock()
		var aerr error
		for _, it := range accepted {
			if aerr = sh.part.Absorb(it.report); aerr != nil {
				break
			}
		}
		sh.mu.Unlock()
		if aerr != nil {
			sess.roundMu.RUnlock()
			h.ingestMu.RUnlock()
			http.Error(w, "collect: absorb accepted report: "+aerr.Error(), http.StatusInternalServerError)
			return
		}
	}
	sealNow := lane != nil && lane.remaining.Load() == 0
	sess.roundMu.RUnlock()
	if sealNow {
		// Either this batch took the last of the quota, or it lost the race
		// to the batch that did: seal (idempotently) before acking so the
		// ack — and a whole-batch 410 — carries the advanced round index.
		h.rounds.Add(h.sealSession(sess))
	}
	ack := ackAt(sess, len(accepted), len(itemErrs)+droppedTail)
	h.ingestMu.RUnlock()
	h.maybeCompact()

	m.batchesJSON.Inc()
	m.reportsJSON.Add(int64(len(accepted)))
	h.reportsJSON.Add(int64(len(accepted)))
	m.rejectedItem.Add(int64(len(itemErrs) + droppedTail))
	if len(itemErrs) > maxBatchErrors {
		itemErrs = itemErrs[:maxBatchErrors]
		ack.ErrorsTruncated = true
	}
	ack.Errors = itemErrs
	if ack.Accepted == 0 && len(items) > 0 && staleRejects == len(itemErrs) {
		h.writeStaleAck(w, ack)
		return
	}
	writeJSON(w, ack)
	m.latency.Observe(time.Since(start).Seconds())
}

// ingestTopKBinary ingests one binary session frame ('T' tier, see
// internal/topk/binwire.go): peek answers addressing and staleness from
// the header alone, the records are validated in full against the lane's
// layout, the whole frame reserves quota atomically (all-or-nothing), the
// raw frame bytes are write-ahead logged, and the packed bit-vectors fold
// word-wise into one shard partial without ever materializing report
// structs. body is the pooled request body (already counted into the
// byte series); the caller's deferred release reclaims it.
func (s *Server) ingestTopKBinary(w http.ResponseWriter, sess *liveSession, body []byte, start time.Time) {
	h, m := s.topk, s.topkM
	f, err := topk.PeekRoundFrame(body)
	if err != nil {
		m.rejectedDecode.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if string(f.SID) != sess.id {
		m.rejectedDecode.Inc()
		http.Error(w, fmt.Sprintf("collect: frame addresses session %q, posted to %q", f.SID, sess.id),
			http.StatusBadRequest)
		return
	}

	h.ingestMu.RLock()
	sess.roundMu.RLock()
	if sess.deleted {
		sess.roundMu.RUnlock()
		h.ingestMu.RUnlock()
		http.Error(w, fmt.Sprintf("collect: no session %q", sess.id), http.StatusNotFound)
		return
	}
	lane := sess.lane
	if lane == nil || f.Round != lane.round {
		// Stale (or done) by the header alone — the records were never
		// decoded. The ack names the live round.
		sess.roundMu.RUnlock()
		m.rejectedItem.Add(int64(f.Count))
		h.writeStaleAck(w, ackAt(sess, 0, f.Count))
		h.ingestMu.RUnlock()
		return
	}
	if err := f.Validate(lane.layout); err != nil {
		sess.roundMu.RUnlock()
		h.ingestMu.RUnlock()
		m.rejectedDecode.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if f.Count == 0 {
		sess.roundMu.RUnlock()
		ack := ackAt(sess, 0, 0)
		h.ingestMu.RUnlock()
		m.batchesBinary.Inc()
		writeJSON(w, ack)
		m.latency.Observe(time.Since(start).Seconds())
		return
	}
	if !lane.reserveExact(int64(f.Count)) {
		sess.roundMu.RUnlock()
		if lane.remaining.Load() == 0 {
			// Lost the race to the sealing batch: resolve the seal, then
			// 410 with the advanced round.
			h.rounds.Add(h.sealSession(sess))
			m.rejectedItem.Add(int64(f.Count))
			h.writeStaleAck(w, ackAt(sess, 0, f.Count))
			h.ingestMu.RUnlock()
			return
		}
		// The frame is live but larger than the round's remaining quota; a
		// frame is all-or-nothing, so the client must resize it (the error
		// carries the live position).
		_, received, quota, _ := sess.position()
		h.ingestMu.RUnlock()
		http.Error(w, fmt.Sprintf("collect: frame of %d reports exceeds the %d remaining in round %d",
			f.Count, quota-received, f.Round), http.StatusConflict)
		return
	}
	if err := s.admitReports(f.Count); err != nil {
		lane.unreserve(int64(f.Count))
		sess.roundMu.RUnlock()
		h.ingestMu.RUnlock()
		m.observeIngestError(err, f.Count)
		writeIngestError(w, err)
		return
	}
	// Durability before application: the accepted frame is logged raw —
	// no re-encode, and replay re-validates the same bytes.
	if h.log != nil {
		rec := make([]byte, 0, 1+len(body))
		rec = append(rec, recSessionBinaryFrame)
		rec = append(rec, body...)
		if err := h.log.Append(rec); err != nil {
			lane.unreserve(int64(f.Count))
			sess.roundMu.RUnlock()
			h.ingestMu.RUnlock()
			m.rejectedWAL.Add(int64(f.Count))
			http.Error(w, "collect: wal append: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	sh := lane.shards[lane.next.Add(1)%uint64(len(lane.shards))]
	sh.mu.Lock()
	aerr := sh.part.AbsorbFrame(f)
	sh.mu.Unlock()
	if aerr != nil {
		// Unreachable: the frame validated against this exact layout above.
		sess.roundMu.RUnlock()
		h.ingestMu.RUnlock()
		http.Error(w, "collect: absorb binary frame: "+aerr.Error(), http.StatusInternalServerError)
		return
	}
	sealNow := lane.remaining.Load() == 0
	sess.roundMu.RUnlock()
	if sealNow {
		h.rounds.Add(h.sealSession(sess))
	}
	ack := ackAt(sess, f.Count, 0)
	h.ingestMu.RUnlock()
	h.maybeCompact()

	m.batchesBinary.Inc()
	m.reportsBinary.Add(int64(f.Count))
	h.reportsBinary.Add(int64(f.Count))
	writeJSON(w, ack)
	m.latency.Observe(time.Since(start).Seconds())
}

func max0(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

// ---------------------------------------------------------------------------
// Client half.
// ---------------------------------------------------------------------------

// TopKSession is the client handle for one hosted mining session: create
// it (NewTopKSession), then per round fetch the broadcast, encode each
// user's pair locally with topk.NewRoundEncoder — raw pairs never leave
// the process — and post the reports.
type TopKSession struct {
	base string
	http *http.Client
	info WireTopKSessionInfo
}

// NewTopKSession creates a session on the server at baseURL.
func NewTopKSession(baseURL string, hc *http.Client, params topk.SessionParams) (*TopKSession, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	body, err := json.Marshal(params)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Post(baseURL+"/topk/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("collect: create session: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("collect: create session status %s", resp.Status)
	}
	var info WireTopKSessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("collect: decode session info: %w", err)
	}
	return &TopKSession{base: baseURL, http: hc, info: info}, nil
}

// OpenTopKSession attaches to an existing session by id — how a client
// resumes driving a session a restarted server recovered from its WAL.
func OpenTopKSession(baseURL string, hc *http.Client, id string) (*TopKSession, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	ts := &TopKSession{base: baseURL, http: hc, info: WireTopKSessionInfo{ID: id}}
	if err := ts.get("", &ts.info); err != nil {
		return nil, err
	}
	return ts, nil
}

// Info returns the creation response (normalized params, round count).
func (ts *TopKSession) Info() WireTopKSessionInfo { return ts.info }

// ID returns the server-assigned session id.
func (ts *TopKSession) ID() string { return ts.info.ID }

func (ts *TopKSession) get(path string, out any) error {
	resp, err := ts.http.Get(ts.base + "/topk/sessions/" + ts.info.ID + path)
	if err != nil {
		return fmt.Errorf("collect: session %s: %w", ts.info.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &statusError{resp.StatusCode, fmt.Sprintf("collect: session %s%s status %s", ts.info.ID, path, resp.Status)}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Round fetches the live round broadcast.
func (ts *TopKSession) Round() (*WireTopKRound, error) {
	var out WireTopKRound
	if err := ts.get("/round", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PostReports ships one batch of round reports. A batch the server
// answers 410 (the round sealed while the batch was in flight) comes back
// as an error carrying that status (see StatusCode) plus the ack naming
// the live round.
func (ts *TopKSession) PostReports(reps []topk.RoundReport) (*WireTopKAck, error) {
	body, err := json.Marshal(reps)
	if err != nil {
		return nil, err
	}
	resp, err := ts.http.Post(ts.base+"/topk/sessions/"+ts.info.ID+"/reports", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("collect: session %s reports: %w", ts.info.ID, err)
	}
	defer resp.Body.Close()
	var ack WireTopKAck
	decodeErr := json.NewDecoder(resp.Body).Decode(&ack)
	if resp.StatusCode != http.StatusOK {
		err := &statusError{resp.StatusCode, fmt.Sprintf("collect: session %s reports status %s", ts.info.ID, resp.Status)}
		if resp.StatusCode == http.StatusGone && decodeErr == nil {
			return &ack, err
		}
		return nil, err
	}
	if decodeErr != nil {
		return nil, fmt.Errorf("collect: decode reports ack: %w", decodeErr)
	}
	return &ack, nil
}

// PostReportsBinary ships one batch of round reports as a binary session
// frame ('T' tier): the reports are validated locally against the round
// broadcast's layout, packed into one CRC-sealed frame from a pooled
// buffer, and applied server-side all-or-nothing. It refuses to run
// against a server that does not advertise "binary" in the session's wire
// formats. The 410 contract matches PostReports: a sealed round comes back
// as a status-carrying error plus the ack naming the live round.
func (ts *TopKSession) PostReportsBinary(cfg *topk.RoundConfig, reps []topk.RoundReport) (*WireTopKAck, error) {
	if !wireSupports(ts.info.Wire, "binary") {
		return nil, fmt.Errorf("collect: session %s: server does not advertise binary round reports (wire %v)",
			ts.info.ID, ts.info.Wire)
	}
	layout, err := topk.LayoutOf(cfg)
	if err != nil {
		return nil, err
	}
	bufp := encodeBufPool.Get().(*[]byte)
	frame, err := topk.AppendRoundFrame((*bufp)[:0], ts.info.ID, layout, reps)
	if err != nil {
		encodeBufPool.Put(bufp)
		return nil, err
	}
	*bufp = frame[:0]
	defer encodeBufPool.Put(bufp)
	resp, err := ts.http.Post(ts.base+"/topk/sessions/"+ts.info.ID+"/reports", BinaryContentType, bytes.NewReader(frame))
	if err != nil {
		return nil, fmt.Errorf("collect: session %s reports: %w", ts.info.ID, err)
	}
	defer resp.Body.Close()
	var ack WireTopKAck
	decodeErr := json.NewDecoder(resp.Body).Decode(&ack)
	if resp.StatusCode != http.StatusOK {
		err := &statusError{resp.StatusCode, fmt.Sprintf("collect: session %s reports status %s", ts.info.ID, resp.Status)}
		if resp.StatusCode == http.StatusGone && decodeErr == nil {
			return &ack, err
		}
		return nil, err
	}
	if decodeErr != nil {
		return nil, fmt.Errorf("collect: decode reports ack: %w", decodeErr)
	}
	return &ack, nil
}

// Result fetches the final per-class rankings; it errors (with a 409
// status, see StatusCode) while the session is still mid-protocol.
func (ts *TopKSession) Result() (*topk.Result, error) {
	var out topk.Result
	if err := ts.get("/result", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete evicts the session server-side, freeing its slot under the
// server's session cap. Call it after Result.
func (ts *TopKSession) Delete() error {
	req, err := http.NewRequest(http.MethodDelete, ts.base+"/topk/sessions/"+ts.info.ID, nil)
	if err != nil {
		return err
	}
	resp, err := ts.http.Do(req)
	if err != nil {
		return fmt.Errorf("collect: delete session %s: %w", ts.info.ID, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for connection reuse
	if resp.StatusCode != http.StatusOK {
		return &statusError{resp.StatusCode, fmt.Sprintf("collect: delete session %s status %s", ts.info.ID, resp.Status)}
	}
	return nil
}
