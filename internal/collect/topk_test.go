package collect

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/topk"
	"repro/internal/wal"
	"repro/internal/xrand"
)

// topkTestServer spins up a session-serving collection server.
func topkTestServer(t *testing.T, opts ...ServerOption) (*Server, *httptest.Server) {
	t.Helper()
	proto, err := core.NewProtocol("ptscp", 2, 8, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(proto, append([]ServerOption{WithTopKSessions(TopKOptions{})}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// topkTestData builds a skewed multi-class population with an unambiguous
// per-class head.
func topkTestData(c, d, n int, seed uint64) *core.Dataset {
	r := xrand.New(seed)
	data := &core.Dataset{Classes: c, Items: d, Name: "served"}
	for u := 0; u < n; u++ {
		cl := u % c
		var it int
		switch {
		case r.Bernoulli(0.3):
			it = r.Intn(6)
		case r.Bernoulli(0.45):
			it = 20 + cl*10 + r.Intn(6)
		default:
			it = r.Intn(d)
		}
		data.Pairs = append(data.Pairs, core.Pair{Class: cl, Item: it})
	}
	return data.Shuffled(r)
}

// driveSession answers every remaining round of a hosted session: user i
// (in pair order, starting at startUser) perturbs with
// topk.UserRand(seed, i), exactly the assignment the offline path uses,
// and reports ship in batches of batch.
func driveSession(t *testing.T, ts *TopKSession, pairs []core.Pair, seed uint64, batch, startUser int) *topk.Result {
	t.Helper()
	user := startUser
	for {
		rd, err := ts.Round()
		if err != nil {
			t.Fatal(err)
		}
		if rd.Done {
			break
		}
		enc, err := topk.NewRoundEncoder(rd.Config)
		if err != nil {
			t.Fatal(err)
		}
		reps := make([]topk.RoundReport, rd.Config.Quota-rd.Received)
		for j := range reps {
			reps[j], err = enc.Encode(pairs[user], topk.UserRand(seed, user))
			if err != nil {
				t.Fatal(err)
			}
			user++
		}
		for lo := 0; lo < len(reps); lo += batch {
			hi := min(lo+batch, len(reps))
			ack, err := ts.PostReports(reps[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			if ack.Rejected != 0 {
				t.Fatalf("round %d: %d reports rejected: %v", rd.Config.Round, ack.Rejected, ack.Errors)
			}
		}
	}
	res, err := ts.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// driveSessionBinary is driveSession over the binary wire: every batch
// ships as one 'T' frame through PostReportsBinary.
func driveSessionBinary(t *testing.T, ts *TopKSession, pairs []core.Pair, seed uint64, batch, startUser int) *topk.Result {
	t.Helper()
	user := startUser
	for {
		rd, err := ts.Round()
		if err != nil {
			t.Fatal(err)
		}
		if rd.Done {
			break
		}
		if !wireSupports(rd.Wire, "binary") {
			t.Fatalf("round broadcast does not advertise binary: %v", rd.Wire)
		}
		enc, err := topk.NewRoundEncoder(rd.Config)
		if err != nil {
			t.Fatal(err)
		}
		reps := make([]topk.RoundReport, rd.Config.Quota-rd.Received)
		for j := range reps {
			reps[j], err = enc.Encode(pairs[user], topk.UserRand(seed, user))
			if err != nil {
				t.Fatal(err)
			}
			user++
		}
		for lo := 0; lo < len(reps); lo += batch {
			hi := min(lo+batch, len(reps))
			ack, err := ts.PostReportsBinary(rd.Config, reps[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			if ack.Accepted != hi-lo || ack.Rejected != 0 {
				t.Fatalf("round %d: frame ack %+v, want %d accepted", rd.Config.Round, ack, hi-lo)
			}
		}
	}
	res, err := ts.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServedSessionMatchesOfflineMine is the acceptance pin: for every
// miner, a full session driven through the HTTP endpoints (same seed, same
// user→group assignment) yields rankings bit-identical to the offline Mine
// path — over the JSON wire and over binary session frames alike.
func TestServedSessionMatchesOfflineMine(t *testing.T) {
	data := topkTestData(3, 128, 6000, 60)
	const k, eps = 4, 5.0
	const mineSeed = 61
	cases := []struct {
		name  string
		miner topk.Miner
		fw    string
		opt   topk.Options
	}{
		{"hec", topk.NewHEC(topk.Options{Shuffling: true, VP: true}), "hec", topk.Options{Shuffling: true, VP: true}},
		{"ptj", topk.NewPTJ(topk.Options{Shuffling: true, VP: true}), "ptj", topk.Options{Shuffling: true, VP: true}},
		{"ptj-pem", topk.NewPTJ(topk.Baseline()), "ptj", topk.Baseline()},
		{"pts-optimized", topk.NewPTS(topk.Optimized()), "pts", topk.Optimized()},
		{"pts-baseline", topk.NewPTS(topk.Baseline()), "pts", topk.Baseline()},
	}
	_, hs := topkTestServer(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.miner.Mine(data, k, eps, xrand.New(mineSeed))
			if err != nil {
				t.Fatal(err)
			}
			// Mine's session seed is the first Uint64 of its generator.
			seed := xrand.New(mineSeed).Uint64()
			ts, err := NewTopKSession(hs.URL, nil, topk.SessionParams{
				Framework: tc.fw, Classes: data.Classes, Items: data.Items,
				K: k, Eps: eps, Users: data.N(), Seed: seed, Opt: tc.opt,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := driveSession(t, ts, data.Pairs, seed, 256, 0)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("served rankings %v != offline Mine %v", got, want)
			}
			// Same session, binary wire: the word-packed frames must land
			// bit-identically too.
			tsb, err := NewTopKSession(hs.URL, nil, topk.SessionParams{
				Framework: tc.fw, Classes: data.Classes, Items: data.Items,
				K: k, Eps: eps, Users: data.N(), Seed: seed, Opt: tc.opt,
			})
			if err != nil {
				t.Fatal(err)
			}
			gotB := driveSessionBinary(t, tsb, data.Pairs, seed, 256, 0)
			if !reflect.DeepEqual(gotB, want) {
				t.Fatalf("binary-served rankings %v != offline Mine %v", gotB, want)
			}
		})
	}
}

// TestTopKSessionSurvivesRestart is the durability acceptance pin: a
// server killed mid-session (never Closed, like a SIGKILL) and restarted
// on the same WAL directory resumes the session — including compacted
// snapshots of mid-flight planner state — to the same final rankings as
// the offline path.
func TestTopKSessionSurvivesRestart(t *testing.T) {
	data := topkTestData(2, 128, 3000, 62)
	const k, eps, seed = 3, 4.0, uint64(6262)
	params := topk.SessionParams{
		Framework: "pts", Classes: data.Classes, Items: data.Items,
		K: k, Eps: eps, Users: data.N(), Seed: seed, Opt: topk.Optimized(),
	}
	offline, err := topk.NewSession(params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := topk.RunSession(offline, data.Pairs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	walOpts := []ServerOption{
		WithTopKSessions(TopKOptions{}),
		WithWAL(dir),
		WithWALOptions(wal.Options{Sync: wal.SyncAlways}),
	}
	proto, err := core.NewProtocol("ptscp", 2, 8, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := NewServer(proto, walOpts...)
	if err != nil {
		t.Fatal(err)
	}
	hsA := httptest.NewServer(srvA.Handler())
	ts, err := NewTopKSession(hsA.URL, nil, params)
	if err != nil {
		t.Fatal(err)
	}

	// postSome encodes and posts n reports continuing the canonical user
	// assignment against the live round.
	user := 0
	postSome := func(ts *TopKSession, n int) {
		t.Helper()
		rd, err := ts.Round()
		if err != nil || rd.Done {
			t.Fatalf("round fetch: err=%v", err)
		}
		enc, err := topk.NewRoundEncoder(rd.Config)
		if err != nil {
			t.Fatal(err)
		}
		reps := make([]topk.RoundReport, n)
		for j := range reps {
			if reps[j], err = enc.Encode(data.Pairs[user], topk.UserRand(seed, user)); err != nil {
				t.Fatal(err)
			}
			user++
		}
		if ack, err := ts.PostReports(reps); err != nil {
			t.Fatal(err)
		} else if ack.Rejected != 0 {
			t.Fatalf("rejected %d: %v", ack.Rejected, ack.Errors)
		}
	}
	// Seal round 0, half-fill round 1, compact (snapshot of the partial
	// aggregate), then post a small tail past the snapshot — the restart
	// must replay snapshot + tail and land mid-round.
	rd, err := ts.Round()
	if err != nil {
		t.Fatal(err)
	}
	q0 := rd.Config.Quota
	postSome(ts, q0)
	rd, err = ts.Round()
	if err != nil || rd.Config.Round != 1 {
		t.Fatalf("expected round 1, got %+v (err %v)", rd, err)
	}
	half := rd.Config.Quota / 2
	postSome(ts, half)
	if err := srvA.topk.compact(); err != nil {
		t.Fatal(err)
	}
	postSome(ts, 5) // tail records past the snapshot
	// SIGKILL-style teardown: stop serving, never Close the WAL.
	hsA.Close()

	srvB, err := NewServer(proto, walOpts...)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srvB.Close()
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	tsB, err := OpenTopKSession(hsB.URL, nil, ts.ID())
	if err != nil {
		t.Fatal(err)
	}
	if tsB.Info().Round != 1 {
		t.Fatalf("recovered session at round %d, want 1", tsB.Info().Round)
	}
	rd, err = tsB.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rd.Received != half+5 {
		t.Fatalf("recovered round 1 holds %d reports, want %d", rd.Received, half+5)
	}
	// The drive helper tops up the half-filled round (quota − received)
	// and finishes the session from the same user index.
	got := driveSession(t, tsB, data.Pairs, seed, 256, user)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered session rankings %v != offline %v", got, want)
	}
}

// TestTopKBinarySessionSurvivesRestart is the binary-lane durability pin:
// accepted 'T' frames are logged raw, a compaction mid-round folds the
// shard partials into the snapshot, and a SIGKILL-style restart replays
// snapshot + raw frame tail to the same mid-round position and the same
// final rankings as the offline path.
func TestTopKBinarySessionSurvivesRestart(t *testing.T) {
	data := topkTestData(2, 128, 3000, 65)
	const k, eps, seed = 3, 4.0, uint64(6565)
	params := topk.SessionParams{
		Framework: "pts", Classes: data.Classes, Items: data.Items,
		K: k, Eps: eps, Users: data.N(), Seed: seed, Opt: topk.Optimized(),
	}
	offline, err := topk.NewSession(params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := topk.RunSession(offline, data.Pairs)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	walOpts := []ServerOption{
		WithTopKSessions(TopKOptions{}),
		WithWAL(dir),
		WithWALOptions(wal.Options{Sync: wal.SyncAlways}),
	}
	proto, err := core.NewProtocol("ptscp", 2, 8, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	srvA, err := NewServer(proto, walOpts...)
	if err != nil {
		t.Fatal(err)
	}
	hsA := httptest.NewServer(srvA.Handler())
	ts, err := NewTopKSession(hsA.URL, nil, params)
	if err != nil {
		t.Fatal(err)
	}

	user := 0
	postSome := func(ts *TopKSession, n int) {
		t.Helper()
		rd, err := ts.Round()
		if err != nil || rd.Done {
			t.Fatalf("round fetch: err=%v", err)
		}
		enc, err := topk.NewRoundEncoder(rd.Config)
		if err != nil {
			t.Fatal(err)
		}
		reps := make([]topk.RoundReport, n)
		for j := range reps {
			if reps[j], err = enc.Encode(data.Pairs[user], topk.UserRand(seed, user)); err != nil {
				t.Fatal(err)
			}
			user++
		}
		if ack, err := ts.PostReportsBinary(rd.Config, reps); err != nil {
			t.Fatal(err)
		} else if ack.Accepted != n {
			t.Fatalf("frame ack %+v, want %d accepted", ack, n)
		}
	}
	// Seal round 0 with frames, half-fill round 1, compact (the snapshot
	// must absorb the shard partials), then a raw-frame tail past it.
	rd, err := ts.Round()
	if err != nil {
		t.Fatal(err)
	}
	postSome(ts, rd.Config.Quota)
	rd, err = ts.Round()
	if err != nil || rd.Config.Round != 1 {
		t.Fatalf("expected round 1, got %+v (err %v)", rd, err)
	}
	half := rd.Config.Quota / 2
	postSome(ts, half)
	if err := srvA.topk.compact(); err != nil {
		t.Fatal(err)
	}
	postSome(ts, 5) // raw 'W' records past the snapshot
	hsA.Close()     // SIGKILL-style: never Close the WAL

	srvB, err := NewServer(proto, walOpts...)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srvB.Close()
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	tsB, err := OpenTopKSession(hsB.URL, nil, ts.ID())
	if err != nil {
		t.Fatal(err)
	}
	rd, err = tsB.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rd.Config.Round != 1 || rd.Received != half+5 {
		t.Fatalf("recovered at round %d with %d reports, want round 1 with %d", rd.Config.Round, rd.Received, half+5)
	}
	got := driveSessionBinary(t, tsB, data.Pairs, seed, 256, user)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered binary session rankings %v != offline %v", got, want)
	}
}

// TestTopKRoundSealRace hammers one round with concurrent posts racing its
// seal: exactly quota reports may be accepted (no double count), and a
// post arriving after the seal is answered 410 Gone with the advanced
// round index.
func TestTopKRoundSealRace(t *testing.T) {
	_, hs := topkTestServer(t)
	data := topkTestData(2, 64, 400, 63)
	const seed = 777
	params := topk.SessionParams{
		Framework: "pts", Classes: data.Classes, Items: data.Items,
		K: 2, Eps: 2, Users: data.N(), Seed: seed, Opt: topk.Optimized(),
	}
	ts, err := NewTopKSession(hs.URL, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ts.Round()
	if err != nil {
		t.Fatal(err)
	}
	quota := rd.Config.Quota
	enc, err := topk.NewRoundEncoder(rd.Config)
	if err != nil {
		t.Fatal(err)
	}
	// Twice the quota of valid round-0 reports, posted one-by-one from
	// many goroutines.
	posts := 2 * quota
	reps := make([]topk.RoundReport, posts)
	for i := range reps {
		if reps[i], err = enc.Encode(data.Pairs[i%data.N()], topk.UserRand(seed, i)); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		gone     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// ts is shared read-only; http.Client is safe for concurrent use.
			for i := w; i < posts; i += workers {
				ack, err := ts.PostReports(reps[i : i+1])
				code, isStatus := StatusCode(err)
				mu.Lock()
				switch {
				case err == nil:
					accepted += ack.Accepted
				case isStatus && code == http.StatusGone:
					gone++
					if ack == nil || ack.Round != 1 {
						mu.Unlock()
						t.Errorf("410 ack %+v does not carry live round 1", ack)
						return
					}
				default:
					mu.Unlock()
					t.Errorf("post %d: %v", i, err)
					return
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if accepted != quota {
		t.Fatalf("round 0 absorbed %d reports, quota is %d", accepted, quota)
	}
	if gone != posts-quota {
		t.Fatalf("%d of %d late posts answered 410", gone, posts-quota)
	}
	rd2, err := ts.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rd2.Done || rd2.Config.Round != 1 || rd2.Received != 0 {
		t.Fatalf("after seal race: %+v", rd2)
	}
}

// TestTopKMixedWireHammer races JSON batches and binary frames into one
// round from many goroutines: exactly the quota is absorbed across both
// wires, the sealed round's stale posts come back 410 with the advanced
// round index, the finished session is bit-identical to the offline
// sequential path, and the per-wire topk ingest counters on /metrics equal
// the /stats totals exactly.
func TestTopKMixedWireHammer(t *testing.T) {
	data := topkTestData(2, 64, 600, 66)
	const seed = 6767
	params := topk.SessionParams{
		Framework: "pts", Classes: data.Classes, Items: data.Items,
		K: 2, Eps: 2, Users: data.N(), Seed: seed, Opt: topk.Optimized(),
	}
	offline, err := topk.NewSession(params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := topk.RunSession(offline, data.Pairs)
	if err != nil {
		t.Fatal(err)
	}

	_, hs := topkTestServer(t)
	ts, err := NewTopKSession(hs.URL, nil, params)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ts.Round()
	if err != nil {
		t.Fatal(err)
	}
	quota := rd.Config.Quota
	chunk := 1
	for c := 32; c > 1; c-- {
		if quota%c == 0 {
			chunk = c
			break
		}
	}
	enc, err := topk.NewRoundEncoder(rd.Config)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]topk.RoundReport, quota)
	for i := range reps {
		if reps[i], err = enc.Encode(data.Pairs[i], topk.UserRand(seed, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Exactly quota reports in chunk-sized pieces, even chunks JSON and odd
	// chunks binary: every reservation is all-or-nothing at a chunk
	// multiple, so each post must be accepted whole.
	chunks := make(chan int, quota/chunk)
	for i := 0; i < quota/chunk; i++ {
		chunks <- i
	}
	close(chunks)
	var (
		wg                   sync.WaitGroup
		jsonSent, binarySent atomic.Int64
	)
	cfg0 := rd.Config
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range chunks {
				piece := reps[i*chunk : (i+1)*chunk]
				var ack *WireTopKAck
				var err error
				if i%2 == 0 {
					ack, err = ts.PostReports(piece)
					jsonSent.Add(int64(len(piece)))
				} else {
					ack, err = ts.PostReportsBinary(cfg0, piece)
					binarySent.Add(int64(len(piece)))
				}
				if err != nil {
					t.Errorf("chunk %d: %v", i, err)
					return
				}
				if ack.Accepted != len(piece) || ack.Rejected != 0 {
					t.Errorf("chunk %d ack %+v, want %d accepted", i, ack, len(piece))
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	rd2, err := ts.Round()
	if err != nil {
		t.Fatal(err)
	}
	if rd2.Done || rd2.Config.Round != 1 || rd2.Received != 0 {
		t.Fatalf("after mixed fill: %+v", rd2)
	}
	// Stale posts against the sealed round — both wires must answer 410
	// Gone carrying the advanced round index.
	if ack, err := ts.PostReports(reps[:1]); err == nil {
		t.Fatal("stale JSON batch accepted")
	} else if code, _ := StatusCode(err); code != http.StatusGone || ack == nil || ack.Round != 1 {
		t.Fatalf("stale JSON batch: code %d, ack %+v", code, ack)
	}
	if ack, err := ts.PostReportsBinary(cfg0, reps[:1]); err == nil {
		t.Fatal("stale binary frame accepted")
	} else if code, _ := StatusCode(err); code != http.StatusGone || ack == nil || ack.Round != 1 {
		t.Fatalf("stale binary frame: code %d, ack %+v", code, ack)
	}
	// Finish the session sequentially (JSON) and pin bit-identity with the
	// offline sequential absorb: merge-at-seal changed nothing.
	got := driveSession(t, ts, data.Pairs, seed, 128, quota)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed-wire rankings %v != offline %v", got, want)
	}
	remaining := data.N() - quota // driveSession shipped the rest over JSON

	var st WireStats
	fetchStats(t, hs.Client(), hs.URL+"/stats", &st)
	if st.TopK == nil {
		t.Fatal("stats missing topk block")
	}
	wantJSON := jsonSent.Load() + int64(remaining)
	wantBinary := binarySent.Load()
	if st.TopK.ReportsJSON != wantJSON || st.TopK.ReportsBinary != wantBinary {
		t.Fatalf("stats report totals json=%d binary=%d, want %d/%d",
			st.TopK.ReportsJSON, st.TopK.ReportsBinary, wantJSON, wantBinary)
	}
	samples := scrapeMetrics(t, hs.Client(), hs.URL).Samples()
	if got := samples[`mcim_ingest_reports_total{tier="topk",wire="json"}`]; int64(got) != wantJSON {
		t.Fatalf("metrics topk json reports %v, want %d", got, wantJSON)
	}
	if got := samples[`mcim_ingest_reports_total{tier="topk",wire="binary"}`]; int64(got) != wantBinary {
		t.Fatalf("metrics topk binary reports %v, want %d", got, wantBinary)
	}
}

// TestTopKStatsBlock: /stats carries the mining tier — open sessions, the
// live round per session, and reports folded this round.
func TestTopKStatsBlock(t *testing.T) {
	_, hs := topkTestServer(t)
	data := topkTestData(2, 64, 200, 64)
	const seed = 11
	ts, err := NewTopKSession(hs.URL, nil, topk.SessionParams{
		Framework: "hec", Classes: data.Classes, Items: data.Items,
		K: 2, Eps: 2, Users: data.N(), Seed: seed,
		Opt: topk.Options{Shuffling: true, VP: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ts.Round()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := topk.NewRoundEncoder(rd.Config)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]topk.RoundReport, 3)
	for j := range reps {
		if reps[j], err = enc.Encode(data.Pairs[j], topk.UserRand(seed, j)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ts.PostReports(reps); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st WireStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TopK == nil {
		t.Fatal("stats missing topk block")
	}
	if st.TopK.Sessions != 1 || st.TopK.Open != 1 || len(st.TopK.Detail) != 1 {
		t.Fatalf("topk stats %+v", st.TopK)
	}
	d := st.TopK.Detail[0]
	if d.ID != ts.ID() || d.Framework != "hec" || d.Round != 0 || d.Received != 3 || d.Done {
		t.Fatalf("session stat %+v", d)
	}
}

// TestTopKSessionAPIValidation covers the endpoint edges: malformed and
// unservable creates, unknown ids, premature results, the session cap.
func TestTopKSessionAPIValidation(t *testing.T) {
	_, hs := topkTestServer(t)
	post := func(body string) int {
		resp, err := http.Post(hs.URL+"/topk/sessions", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := post(`{nope`); code != http.StatusBadRequest {
		t.Fatalf("malformed create → %d", code)
	}
	if code := post(`{"framework":"pem","classes":2,"items":8,"k":1,"eps":1,"users":10}`); code != http.StatusBadRequest {
		t.Fatalf("unknown framework → %d", code)
	}
	// A domain beyond the wire cap plans fine offline but cannot be served.
	if code := post(`{"framework":"ptj","classes":4096,"items":4096,"k":1,"eps":1,"users":10,"options":{"shuffling":true}}`); code != http.StatusBadRequest {
		t.Fatalf("unservable joint domain → %d", code)
	}
	for _, path := range []string{"/topk/sessions/zzz", "/topk/sessions/zzz/round", "/topk/sessions/zzz/result"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s → %d", path, resp.StatusCode)
		}
	}
	ts, err := NewTopKSession(hs.URL, nil, topk.SessionParams{
		Framework: "pts", Classes: 2, Items: 64, K: 2, Eps: 2, Users: 100, Seed: 1,
		Opt: topk.Optimized(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Result(); err == nil {
		t.Fatal("mid-protocol result served")
	} else if code, ok := StatusCode(err); !ok || code != http.StatusConflict {
		t.Fatalf("mid-protocol result error %v", err)
	}
}

// TestTopKSessionLimit: creates beyond MaxSessions are refused with 429,
// and DELETE evicts a session to free its slot — durably: a restart on the
// same WAL does not resurrect it.
func TestTopKSessionLimit(t *testing.T) {
	proto, err := core.NewProtocol("ptscp", 2, 8, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := []ServerOption{
		WithTopKSessions(TopKOptions{MaxSessions: 2}),
		WithWAL(dir), WithWALOptions(wal.Options{Sync: wal.SyncAlways}),
	}
	srv, err := NewServer(proto, opts...)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	params := topk.SessionParams{Framework: "hec", Classes: 2, Items: 16, K: 1, Eps: 1, Users: 10, Opt: topk.Options{Shuffling: true}}
	var held []*TopKSession
	for i := 0; i < 2; i++ {
		ts, err := NewTopKSession(hs.URL, nil, params)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, ts)
	}
	if _, err := NewTopKSession(hs.URL, nil, params); err == nil {
		t.Fatal("third session accepted over a limit of 2")
	}
	// Eviction frees the slot...
	if err := held[0].Delete(); err != nil {
		t.Fatal(err)
	}
	if err := held[0].Delete(); err == nil {
		t.Fatal("double delete accepted")
	}
	ts3, err := NewTopKSession(hs.URL, nil, params)
	if err != nil {
		t.Fatalf("create after delete: %v", err)
	}
	// ...and sticks across a SIGKILL-style restart.
	hs.Close()
	srvB, err := NewServer(proto, opts...)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer srvB.Close()
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	if _, err := OpenTopKSession(hsB.URL, nil, held[0].ID()); err == nil {
		t.Fatal("deleted session resurrected by WAL replay")
	}
	for _, id := range []string{held[1].ID(), ts3.ID()} {
		if _, err := OpenTopKSession(hsB.URL, nil, id); err != nil {
			t.Fatalf("surviving session %s lost: %v", id, err)
		}
	}
}
