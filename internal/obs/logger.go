package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Format selects the line encoding.
type Format int8

const (
	FormatKV Format = iota
	FormatJSON
)

// ParseFormat parses a -log-format flag value.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "kv", "text", "logfmt":
		return FormatKV, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatKV, fmt.Errorf("obs: unknown log format %q (want kv|json)", s)
}

// Logger is a leveled structured logger emitting one line per event as
// either key=value pairs or a JSON object. Loggers derived via With share
// the parent's writer and mutex, so lines never interleave.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	format Format
	ctx    []any // bound key/value pairs, rendered on every line
	now    func() time.Time
}

// New returns a logger writing to w at the given level and format.
func New(w io.Writer, level Level, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, format: format, now: time.Now}
}

// With returns a child logger with extra key/value context bound to every
// line it emits.
func (l *Logger) With(kv ...any) *Logger {
	child := *l
	child.ctx = append(append([]any(nil), l.ctx...), kv...)
	return &child
}

// Enabled reports whether a line at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool { return level >= l.level }

// Debug emits a debug-level line.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info-level line.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn emits a warn-level line.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error emits an error-level line.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var line []byte
	if l.format == FormatJSON {
		line = l.jsonLine(ts, level, msg, kv)
	} else {
		line = l.kvLine(ts, level, msg, kv)
	}
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}

func (l *Logger) kvLine(ts string, level Level, msg string, kv []any) []byte {
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(ts)
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(kvQuote(msg))
	writePairs := func(pairs []any) {
		for i := 0; i+1 < len(pairs); i += 2 {
			b.WriteByte(' ')
			b.WriteString(fmt.Sprint(pairs[i]))
			b.WriteByte('=')
			b.WriteString(kvQuote(formatLogValue(pairs[i+1])))
		}
	}
	writePairs(l.ctx)
	writePairs(kv)
	b.WriteByte('\n')
	return []byte(b.String())
}

func (l *Logger) jsonLine(ts string, level Level, msg string, kv []any) []byte {
	m := make(map[string]any, 3+len(l.ctx)/2+len(kv)/2)
	m["ts"] = ts
	m["level"] = level.String()
	m["msg"] = msg
	addPairs := func(pairs []any) {
		for i := 0; i+1 < len(pairs); i += 2 {
			key := fmt.Sprint(pairs[i])
			switch v := pairs[i+1].(type) {
			case error:
				m[key] = v.Error()
			case fmt.Stringer:
				m[key] = v.String()
			default:
				m[key] = v
			}
		}
	}
	addPairs(l.ctx)
	addPairs(kv)
	line, err := json.Marshal(m)
	if err != nil {
		line = []byte(fmt.Sprintf(`{"ts":%q,"level":%q,"msg":%q,"obs_marshal_error":%q}`,
			ts, level.String(), msg, err.Error()))
	}
	return append(line, '\n')
}

func formatLogValue(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		return t.Error()
	case fmt.Stringer:
		return t.String()
	default:
		return fmt.Sprint(v)
	}
}

// kvQuote quotes a value for the kv format when it contains whitespace,
// quotes, or the pair separator.
func kvQuote(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

var defaultLogger atomic.Pointer[Logger]

func init() {
	defaultLogger.Store(New(os.Stderr, LevelInfo, FormatKV))
}

// Default returns the process-wide logger (stderr, info, kv until
// SetDefault replaces it).
func Default() *Logger { return defaultLogger.Load() }

// SetDefault replaces the process-wide logger; binaries call this after
// parsing -log-level / -log-format.
func SetDefault(l *Logger) {
	if l != nil {
		defaultLogger.Store(l)
	}
}

// SetupDefault parses -log-level / -log-format flag values and installs the
// resulting logger (writing to stderr) as the process default.
func SetupDefault(level, format string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	f, err := ParseFormat(format)
	if err != nil {
		return err
	}
	SetDefault(New(os.Stderr, lv, f))
	return nil
}

// StdlogWriter returns an io.Writer forwarding each written line to the
// CURRENT default logger at the given level. Binaries route the stdlib log
// package through it (log.SetFlags(0); log.SetOutput(obs.StdlogWriter(...)))
// so remaining log.Printf call sites emit structured lines too; the
// indirection through Default() means a later SetupDefault still applies.
func StdlogWriter(level Level) io.Writer { return stdlogWriter{level} }

type stdlogWriter struct{ level Level }

func (w stdlogWriter) Write(p []byte) (int, error) {
	msg := strings.TrimRight(string(p), "\n")
	switch w.level {
	case LevelDebug:
		Default().Debug(msg)
	case LevelWarn:
		Default().Warn(msg)
	case LevelError:
		Default().Error(msg)
	default:
		Default().Info(msg)
	}
	return len(p), nil
}
