package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its raw label body
// (the text between { and }, possibly empty), and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Key returns the series identity, name{labels}.
func (s Sample) Key() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// ExpoFamily is a parsed metric family: the HELP/TYPE headers plus every
// sample whose name belongs to it (for histograms that includes the
// _bucket/_sum/_count series).
type ExpoFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a parsed Prometheus text exposition.
type Exposition struct {
	Families []*ExpoFamily
	byName   map[string]*ExpoFamily
	// Orphans are samples with no preceding TYPE header for their family.
	Orphans []Sample
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *ExpoFamily { return e.byName[name] }

// Samples flattens the exposition into series-key → value.
func (e *Exposition) Samples() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range e.Families {
		for _, s := range f.Samples {
			out[s.Key()] = s.Value
		}
	}
	for _, s := range e.Orphans {
		out[s.Key()] = s.Value
	}
	return out
}

// histogramSuffixes maps a histogram family name to the sample names it
// legitimately emits.
func familyForSample(name string, byName map[string]*ExpoFamily) *ExpoFamily {
	if f := byName[name]; f != nil {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f := byName[base]; f != nil && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

// ParseExposition parses the Prometheus text exposition format. It is
// deliberately lenient about what it accepts (unknown TYPEs, samples with
// no header become Orphans) — Lint is the strict pass.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{byName: make(map[string]*ExpoFamily)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimLeft(rest, " ")
			kw, rest, _ := strings.Cut(rest, " ")
			switch kw {
			case "HELP", "TYPE":
				name, text, _ := strings.Cut(rest, " ")
				if name == "" {
					return nil, fmt.Errorf("obs: line %d: %s with no metric name", lineNo, kw)
				}
				f := e.byName[name]
				if f == nil {
					f = &ExpoFamily{Name: name}
					e.byName[name] = f
					e.Families = append(e.Families, f)
				}
				if kw == "HELP" {
					f.Help = text
				} else {
					f.Type = text
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		if f := familyForSample(s.Name, e.byName); f != nil {
			f.Samples = append(f.Samples, s)
		} else {
			e.Orphans = append(e.Orphans, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		s.Labels = rest[i+1 : j]
		rest = strings.TrimLeft(rest[j+1:], " \t")
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("sample line %q has no value", line)
		}
	}
	// An optional timestamp may follow the value; take the first field.
	val, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
	if val == "" {
		return s, fmt.Errorf("sample line %q has no value", line)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("sample line %q: bad value: %w", line, err)
	}
	s.Value = v
	if s.Name == "" || !metricNameRE.MatchString(s.Name) {
		return s, fmt.Errorf("sample line %q: invalid metric name %q", line, s.Name)
	}
	return s, nil
}

// Lint runs the strict naming/shape checks over a parsed exposition and
// returns one message per violation. An empty slice means the exposition
// is clean. Checks: every family has HELP and TYPE, names match the
// Prometheus charset, counters end in _total, no duplicate series,
// histograms carry a +Inf bucket with _count equal to it and a _sum, and
// no sample is orphaned from a typed family.
func Lint(e *Exposition) []string {
	var problems []string
	seen := make(map[string]bool)
	for _, f := range e.Families {
		if !metricNameRE.MatchString(f.Name) {
			problems = append(problems, fmt.Sprintf("family %q: invalid metric name", f.Name))
		}
		if f.Help == "" {
			problems = append(problems, fmt.Sprintf("family %q: missing # HELP", f.Name))
		}
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(f.Name, "_total") {
				problems = append(problems, fmt.Sprintf("counter %q: name must end in _total", f.Name))
			}
		case "gauge":
		case "histogram":
			problems = append(problems, lintHistogram(f)...)
		case "":
			problems = append(problems, fmt.Sprintf("family %q: missing # TYPE", f.Name))
		default:
			problems = append(problems, fmt.Sprintf("family %q: unknown type %q", f.Name, f.Type))
		}
		for _, s := range f.Samples {
			key := s.Key()
			if seen[key] {
				problems = append(problems, fmt.Sprintf("duplicate series %s", key))
			}
			seen[key] = true
		}
	}
	for _, s := range e.Orphans {
		problems = append(problems, fmt.Sprintf("sample %s has no # TYPE header", s.Key()))
	}
	sort.Strings(problems)
	return problems
}

func lintHistogram(f *ExpoFamily) []string {
	var problems []string
	// Group by the label body minus le: each group must have a +Inf
	// bucket, a _sum and a _count matching the +Inf cumulative count.
	type group struct {
		inf, infSeen   float64
		count, sum     float64
		countOK, sumOK bool
	}
	groups := make(map[string]*group)
	get := func(labels string) *group {
		g := groups[labels]
		if g == nil {
			g = &group{}
			groups[labels] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, rest := extractLE(s.Labels)
			g := get(rest)
			if le == "+Inf" {
				g.inf = s.Value
				g.infSeen = 1
			}
		case f.Name + "_sum":
			g := get(s.Labels)
			g.sum, g.sumOK = s.Value, true
		case f.Name + "_count":
			g := get(s.Labels)
			g.count, g.countOK = s.Value, true
		default:
			problems = append(problems, fmt.Sprintf("histogram %q: stray sample %s", f.Name, s.Key()))
		}
	}
	for labels, g := range groups {
		id := f.Name
		if labels != "" {
			id += "{" + labels + "}"
		}
		if g.infSeen == 0 {
			problems = append(problems, fmt.Sprintf("histogram %s: missing le=\"+Inf\" bucket", id))
		}
		if !g.sumOK {
			problems = append(problems, fmt.Sprintf("histogram %s: missing _sum", id))
		}
		if !g.countOK {
			problems = append(problems, fmt.Sprintf("histogram %s: missing _count", id))
		} else if g.infSeen == 1 && g.count != g.inf {
			problems = append(problems, fmt.Sprintf("histogram %s: _count %v != +Inf bucket %v", id, g.count, g.inf))
		}
	}
	return problems
}

// extractLE removes the le label from a _bucket label body, returning the
// le value and the remaining labels.
func extractLE(labels string) (le, rest string) {
	parts := strings.Split(labels, ",")
	kept := parts[:0]
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, p)
	}
	return le, strings.Join(kept, ",")
}
