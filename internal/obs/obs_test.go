package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_reqs_total", "requests", "tier", "freq")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters never decrease
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if again := r.Counter("t_reqs_total", "requests", "tier", "freq"); again != c {
		t.Fatal("re-registration did not return the same handle")
	}
	other := r.Counter("t_reqs_total", "requests", "tier", "mean")
	if other == c {
		t.Fatal("distinct label sets share a handle")
	}

	g := r.Gauge("t_depth", "queue depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-9 {
		t.Fatalf("sum = %v, want 5.555", h.Sum())
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`t_lat_seconds_bucket{le="0.01"} 1`,
		`t_lat_seconds_bucket{le="0.1"} 2`,
		`t_lat_seconds_bucket{le="1"} 3`,
		`t_lat_seconds_bucket{le="+Inf"} 4`,
		`t_lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderParseLintRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_a_total", "a counter", "wire", "json").Add(7)
	r.Counter("t_a_total", "a counter", "wire", "binary").Add(9)
	r.Gauge("t_b", "a gauge").Set(3)
	r.GaugeFunc("t_c", "a computed gauge", func() float64 { return 42 })
	r.Histogram("t_h_seconds", "a histogram", []float64{1, 2}).Observe(1.5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatalf("parse back own render: %v\n%s", err, b.String())
	}
	if problems := Lint(e); len(problems) != 0 {
		t.Fatalf("lint of own render: %v\n%s", problems, b.String())
	}
	samples := e.Samples()
	for key, want := range map[string]float64{
		`t_a_total{wire="json"}`:   7,
		`t_a_total{wire="binary"}`: 9,
		`t_b`:                      3,
		`t_c`:                      42,
		`t_h_seconds_sum`:          1.5,
	} {
		if got := samples[key]; got != want {
			t.Fatalf("sample %s = %v, want %v (all: %v)", key, got, want, samples)
		}
	}
	if f := e.Family("t_a_total"); f == nil || f.Type != "counter" || f.Help != "a counter" {
		t.Fatalf("family t_a_total parsed wrong: %+v", f)
	}
}

func TestMergedRenderInjectsLabels(t *testing.T) {
	shared := func() *Registry {
		r := NewRegistry()
		r.Counter("t_reqs_total", "requests", "tier", "freq")
		r.Histogram("t_lat_seconds", "latency", []float64{1})
		return r
	}
	a, b := shared(), shared()
	a.Counter("t_reqs_total", "requests", "tier", "freq").Add(1)
	b.Counter("t_reqs_total", "requests", "tier", "freq").Add(2)
	root := NewRegistry()
	root.Gauge("t_tenants", "tenant count").Set(2)

	var out bytes.Buffer
	err := WritePrometheusMerged(&out, []Labeled{
		{Reg: root},
		{Key: "tenant", Value: "a", Reg: a},
		{Key: "tenant", Value: "b", Reg: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"t_tenants 2",
		`t_reqs_total{tenant="a",tier="freq"} 1`,
		`t_reqs_total{tenant="b",tier="freq"} 2`,
		`t_lat_seconds_bucket{tenant="a",le="1"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("merged render missing %q:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE t_reqs_total"); n != 1 {
		t.Fatalf("TYPE header emitted %d times, want 1:\n%s", n, text)
	}
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if problems := Lint(e); len(problems) != 0 {
		t.Fatalf("lint of merged render: %v\n%s", problems, text)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	src := `# TYPE bad-name counter
# HELP no_type_total helped
# TYPE dup_total counter
# HELP dup_total helped
dup_total 1
dup_total 2
orphan_metric 5
# TYPE short counter
# HELP short helped
short 1
`
	e, err := ParseExposition(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	problems := strings.Join(Lint(e), "\n")
	for _, want := range []string{
		"missing # TYPE",     // no_type_total has HELP only
		"duplicate series",   // dup_total twice
		"no # TYPE header",   // orphan_metric
		"must end in _total", // counter `short`
	} {
		if !strings.Contains(problems, want) {
			t.Fatalf("lint missing %q in:\n%s", want, problems)
		}
	}
}

func TestConcurrentCounterExactness(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_n_total", "n")
	h := r.Histogram("t_h", "h", []float64{10})
	var wg sync.WaitGroup
	const goroutines, perG = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != goroutines*perG {
		t.Fatalf("counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG || h.Sum() != goroutines*perG {
		t.Fatalf("histogram count/sum = %d/%v, want %d", h.Count(), h.Sum(), goroutines*perG)
	}
}

func TestLoggerKVAndJSON(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, LevelInfo, FormatKV)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	l.Debug("hidden")
	l.With("tier", "freq").Error("compaction failed", "err", errors.New(`disk "full"`), "segments", 3)
	got := buf.String()
	want := `ts=2026-08-08T12:00:00Z level=error msg="compaction failed" tier=freq err="disk \"full\"" segments=3` + "\n"
	if got != want {
		t.Fatalf("kv line:\n got %q\nwant %q", got, want)
	}

	buf.Reset()
	j := New(&buf, LevelWarn, FormatJSON)
	j.now = l.now
	j.Info("hidden")
	j.Warn("slow", "elapsed_ms", 12.5)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("json line %q: %v", buf.String(), err)
	}
	if m["level"] != "warn" || m["msg"] != "slow" || m["elapsed_ms"] != 12.5 {
		t.Fatalf("json line fields wrong: %v", m)
	}
}

func TestParseLevelFormat(t *testing.T) {
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Fatalf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) did not error")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Fatalf("ParseFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat(xml) did not error")
	}
}

func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("empty go version")
	}
	r := NewRegistry()
	RegisterBuildInfo(r)
	var out bytes.Buffer
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `mcim_build_info{go_version="`) {
		t.Fatalf("build info gauge missing:\n%s", out.String())
	}
}
