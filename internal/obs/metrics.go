// Package obs is the zero-dependency observability layer: a metrics
// registry rendered in the Prometheus text exposition format, a leveled
// structured logger, and build-info plumbing. It exists so every layer of
// the collection stack (collect, wal, tenant, the binaries) can expose
// runtime signal without pulling in client_golang or any other module.
//
// The registry hands out pre-resolved handles — a (name, label-set) pair
// is registered once and the returned *Counter / *Gauge / *Histogram is a
// single atomic word (or fixed array of them). The hot ingest path
// therefore pays one atomic add per event: no map lookups, no label
// hashing, no allocations.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use, but callers normally obtain one from Registry.Counter so it renders.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Negative deltas are ignored: Prometheus
// counters must never decrease, and silently clamping beats corrupting the
// series over a caller bug.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are cumulative upper
// bounds; an implicit +Inf bucket always exists. Observe is lock-free:
// a linear scan over the (small, fixed) bound slice plus two atomics.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.bounds {
		if v <= ub {
			h.counts[i].Add(1)
			goto sum
		}
	}
	h.inf.Add(1)
sum:
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is the default bound set for request-latency histograms,
// in seconds: 100µs up to 2.5s.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets is the default bound set for count-shaped histograms
// (reports per drain, items per batch): powers of four from 1 to ~1M.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, label-set) instance inside a family. Exactly one of
// c/g/gf/h is set, matching the family kind.
type series struct {
	labels string // rendered `k="v",k2="v2"` or ""
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

type family struct {
	name     string
	help     string
	kind     metricKind
	buckets  []float64
	series   []*series
	byLabels map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
// Registration is idempotent: asking for the same (name, labels) again
// returns the existing handle, so independently constructed components can
// share a series (e.g. a re-created tenant reusing its auth counter).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// renderLabels turns alternating key/value pairs into the exposition label
// body (`k="v",...`). Panics on malformed input: metric registration is
// construction-time code and a bad label set is a programming error.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label key/value list %q", kv))
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if !labelNameRE.MatchString(kv[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", kv[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register finds or creates the family and the series for (name, kv).
// Returns the series; fills in the value handle on first registration.
func (r *Registry) register(name, help string, kind metricKind, buckets []float64, kv []string) *series {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if kind == counterKind && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	labels := renderLabels(kv)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, byLabels: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	if s := f.byLabels[labels]; s != nil {
		return s
	}
	s := &series{labels: labels}
	switch kind {
	case counterKind:
		s.c = &Counter{}
	case gaugeKind:
		s.g = &Gauge{}
	case histogramKind:
		b := f.buckets
		s.h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
	}
	f.byLabels[labels] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or finds) a counter series. kv is an alternating
// label key/value list; the name must end in _total.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	return r.register(name, help, counterKind, nil, kv).c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	return r.register(name, help, gaugeKind, nil, kv).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same (name, labels) replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	s := r.register(name, help, gaugeKind, nil, kv)
	r.mu.Lock()
	s.g, s.gf = nil, fn
	r.mu.Unlock()
}

// Histogram registers (or finds) a fixed-bucket histogram series. The
// bucket bounds of a family are fixed by its first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, kv ...string) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets must be sorted", name))
	}
	return r.register(name, help, histogramKind, buckets, kv).h
}

// WritePrometheus renders every family in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheusMerged(w, []Labeled{{Reg: r}})
}

// Handler returns an http.Handler serving the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Labeled pairs a registry with a label injected into every series it
// contributes to a merged render. An empty Key injects nothing.
type Labeled struct {
	Key   string
	Value string
	Reg   *Registry
}

// WritePrometheusMerged renders several registries as one exposition,
// grouping same-named families under a single HELP/TYPE header and
// injecting each set's label (if any) into its series. This is how the
// tenant root mux serves a global roll-up: the registry-level set
// unlabeled plus every tenant's collect registry under tenant="name".
func WritePrometheusMerged(w io.Writer, sets []Labeled) error {
	// Snapshot every family under its registry lock: registration (e.g. a
	// tenant being created mid-scrape) may append series concurrently, and
	// GaugeFunc may swap a series' function. Values themselves are atomics
	// and are read lock-free at write time.
	type famSnap struct {
		inject string
		help   string
		kind   metricKind
		series []series
	}
	var order []string
	byName := make(map[string][]famSnap)
	kinds := make(map[string]metricKind)
	for _, set := range sets {
		if set.Reg == nil {
			continue
		}
		inject := ""
		if set.Key != "" {
			inject = renderLabels([]string{set.Key, set.Value})
		}
		set.Reg.mu.Lock()
		for _, f := range set.Reg.families {
			snap := famSnap{inject: inject, help: f.help, kind: f.kind, series: make([]series, len(f.series))}
			for i, s := range f.series {
				snap.series[i] = *s
			}
			if k, ok := kinds[f.name]; ok {
				if k != f.kind {
					set.Reg.mu.Unlock()
					return fmt.Errorf("obs: merged metric %q is both %s and %s", f.name, k, f.kind)
				}
			} else {
				kinds[f.name] = f.kind
				order = append(order, f.name)
			}
			byName[f.name] = append(byName[f.name], snap)
		}
		set.Reg.mu.Unlock()
	}

	var b strings.Builder
	for _, name := range order {
		head := byName[name][0]
		fmt.Fprintf(&b, "# HELP %s %s\n", name, strings.ReplaceAll(head.help, "\n", " "))
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, head.kind)
		for _, snap := range byName[name] {
			writeFamily(&b, name, snap.kind, snap.inject, snap.series)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// joinLabels combines an injected label set with a series label set.
func joinLabels(inject, labels string) string {
	switch {
	case inject == "":
		return labels
	case labels == "":
		return inject
	default:
		return inject + "," + labels
	}
}

func writeFamily(b *strings.Builder, name string, kind metricKind, inject string, series []series) {
	for _, s := range series {
		labels := joinLabels(inject, s.labels)
		switch kind {
		case counterKind:
			writeSample(b, name, labels, float64(s.c.Value()))
		case gaugeKind:
			v := 0.0
			if s.gf != nil {
				v = s.gf()
			} else {
				v = s.g.Value()
			}
			writeSample(b, name, labels, v)
		case histogramKind:
			cum := int64(0)
			for i, ub := range s.h.bounds {
				cum += s.h.counts[i].Load()
				writeSample(b, name+"_bucket", joinLabels(labels, `le="`+formatFloat(ub)+`"`), float64(cum))
			}
			cum += s.h.inf.Load()
			writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
			writeSample(b, name+"_sum", labels, s.h.Sum())
			writeSample(b, name+"_count", labels, float64(s.h.Count()))
		}
	}
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
