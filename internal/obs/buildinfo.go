package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the subset of debug.ReadBuildInfo surfaced through /stats
// and the mcim_build_info metric.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the process build info: the Go toolchain version and, when
// the binary was built inside a VCS checkout, the (shortened) revision and
// dirty flag. Read once and cached.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev := s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				buildInfo.Revision = rev
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo registers the conventional constant-1 build-info gauge
// (mcim_build_info{go_version,revision}) on r.
func RegisterBuildInfo(r *Registry) {
	b := Build()
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	r.Gauge("mcim_build_info",
		"Constant 1, labeled with the Go toolchain version and VCS revision the binary was built from.",
		"go_version", b.GoVersion, "revision", rev).Set(1)
}
