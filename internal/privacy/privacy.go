// Package privacy verifies ε-LDP guarantees exactly, by enumerating every
// possible mechanism output on small domains and bounding the worst-case
// likelihood ratio
//
//	max_{output S, inputs v,v'} Pr[A(v) = S] / Pr[A(v') = S] ≤ e^ε.
//
// The perturbation mechanisms in this repository all have factorizable
// output distributions (per-bit independence for the unary-encoding family,
// categorical outputs for GRR), so the exact ratio is computable in
// closed form without sampling. The package turns the paper's Theorem 1
// (validity perturbation is ε-LDP) and Theorem 2 (correlated perturbation is
// ε-LDP) into executable checks, which the tests run across parameter
// sweeps; it is also exported for callers who want to audit custom
// configurations before deployment.
package privacy

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fo"
)

// MaxRatio is the result of an exact worst-case likelihood-ratio audit.
type MaxRatio struct {
	// Ratio is max over outputs and input pairs of the likelihood ratio.
	Ratio float64
	// EffectiveEpsilon is ln(Ratio), the tight privacy level.
	EffectiveEpsilon float64
}

// Satisfies reports whether the audited mechanism meets eps-LDP, with a
// small tolerance for floating-point accumulation.
func (m MaxRatio) Satisfies(eps float64) bool {
	return m.EffectiveEpsilon <= eps+1e-9
}

// GRRRatio audits Generalized Randomized Response exactly: every output is
// a single value with probability p (input retained) or q (any other
// input), so the worst-case ratio is p/q.
func GRRRatio(g *fo.GRR) MaxRatio {
	ratio := g.P() / g.Q()
	if g.DomainSize() == 1 {
		ratio = 1 // only one input: nothing to distinguish
	}
	return MaxRatio{Ratio: ratio, EffectiveEpsilon: math.Log(ratio)}
}

// UERatio audits a unary-encoding mechanism exactly. Outputs are bit
// vectors with independent bits; two inputs differ in exactly two encoded
// positions, so the worst-case output sets the differing bits to the most
// distinguishing values:
//
//	max ratio = (p/q) · ((1−q)/(1−p)) = e^ε (Theorem 1)
func UERatio(p, q float64) (MaxRatio, error) {
	if !(0 < q && q < p && p < 1) {
		return MaxRatio{}, fmt.Errorf("privacy: UE requires 0<q<p<1, got p=%v q=%v", p, q)
	}
	ratio := p * (1 - q) / ((1 - p) * q)
	return MaxRatio{Ratio: ratio, EffectiveEpsilon: math.Log(ratio)}, nil
}

// enumerateBits walks all 2^n bit vectors of length n as boolean slices.
func enumerateBits(n int, fn func(bits []bool)) {
	bits := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			fn(bits)
			return
		}
		bits[i] = false
		rec(i + 1)
		bits[i] = true
		rec(i + 1)
	}
	rec(0)
}

// ueOutputProb returns the probability that a UE mechanism with bit
// probabilities (p, q) maps the encoded input to exactly the given output.
func ueOutputProb(encoded, output []bool, p, q float64) float64 {
	prob := 1.0
	for i := range encoded {
		pr := q
		if encoded[i] {
			pr = p
		}
		if !output[i] {
			pr = 1 - pr
		}
		prob *= pr
	}
	return prob
}

// VPRatioExhaustive audits validity perturbation by enumerating all 2^(d+1)
// outputs against every input in the extended domain {0..d-1, Invalid}.
// It is exponential in d and intended for small domains in tests; the
// closed form UERatio covers production parameter checks.
func VPRatioExhaustive(vp *core.VP) MaxRatio {
	d := vp.DomainSize()
	inputs := make([][]bool, 0, d+1)
	for v := 0; v < d; v++ {
		inputs = append(inputs, bitsOf(vp.Encode(v)))
	}
	inputs = append(inputs, bitsOf(vp.Encode(core.Invalid)))
	worst := 1.0
	enumerateBits(d+1, func(out []bool) {
		lo, hi := math.Inf(1), 0.0
		for _, enc := range inputs {
			pr := ueOutputProb(enc, out, vp.P(), vp.Q())
			if pr < lo {
				lo = pr
			}
			if pr > hi {
				hi = pr
			}
		}
		if lo > 0 && hi/lo > worst {
			worst = hi / lo
		}
	})
	return MaxRatio{Ratio: worst, EffectiveEpsilon: math.Log(worst)}
}

// bitsOf converts a bitvec report into a boolean slice.
func bitsOf(v interface {
	Len() int
	Get(int) bool
}) []bool {
	out := make([]bool, v.Len())
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// CPRatioExhaustive audits the correlated perturbation mechanism end to
// end — the executable form of Theorem 2. A CP output is a (label, bit
// vector) pair; for input (C, I) its probability is
//
//	Pr[out] = Σ_{L'} Pr_GRR[C→L'] · Pr_UE[encode(I if L'=C else ⊥) → bits]
//
// where the sum collapses because the label output is observed. The audit
// enumerates all outputs over all inputs in C × (I ∪ {⊥}) and returns the
// exact worst-case ratio, which Theorem 2 bounds by e^{ε₁+ε₂}.
//
// Complexity is O(c²·d·2^{d+1}); keep c and d small.
func CPRatioExhaustive(cp *core.CP) MaxRatio {
	c, d := cp.Classes(), cp.Items()
	p1, q1, p2, q2 := cp.Probabilities()
	labelProb := func(in, out int) float64 {
		if c == 1 {
			return 1
		}
		if in == out {
			return p1
		}
		return q1
	}
	// Encoded item vectors per (input item, label kept?).
	encodeFor := func(item int, kept bool) []bool {
		enc := make([]bool, d+1)
		if kept && item != core.Invalid {
			enc[item] = true
		} else {
			enc[d] = true
		}
		return enc
	}
	type input struct{ class, item int }
	inputs := make([]input, 0, c*(d+1))
	for cl := 0; cl < c; cl++ {
		for it := 0; it < d; it++ {
			inputs = append(inputs, input{cl, it})
		}
		inputs = append(inputs, input{cl, core.Invalid})
	}
	worst := 1.0
	for label := 0; label < c; label++ {
		enumerateBits(d+1, func(out []bool) {
			lo, hi := math.Inf(1), 0.0
			for _, in := range inputs {
				kept := label == in.class
				pr := labelProb(in.class, label) *
					ueOutputProb(encodeFor(in.item, kept), out, p2, q2)
				if pr < lo {
					lo = pr
				}
				if pr > hi {
					hi = pr
				}
			}
			if lo > 0 && hi/lo > worst {
				worst = hi / lo
			}
		})
	}
	return MaxRatio{Ratio: worst, EffectiveEpsilon: math.Log(worst)}
}

// OLHRatio audits Optimal Local Hashing: conditioned on the public seed,
// the report is GRR over g buckets, and two inputs either hash together
// (ratio 1) or apart (ratio p/q with q the per-bucket flip mass). The
// worst case is hashing apart.
func OLHRatio(o *fo.OLH) MaxRatio {
	g := float64(o.G())
	e := o.Epsilon()
	p := math.Exp(e) / (math.Exp(e) + g - 1)
	q := 1 / (math.Exp(e) + g - 1)
	ratio := p / q
	return MaxRatio{Ratio: ratio, EffectiveEpsilon: math.Log(ratio)}
}
