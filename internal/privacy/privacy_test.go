package privacy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fo"
)

func TestGRRRatioExact(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2, 4} {
		for _, d := range []int{2, 5, 50} {
			g, err := fo.NewGRR(d, eps)
			if err != nil {
				t.Fatal(err)
			}
			m := GRRRatio(g)
			if math.Abs(m.EffectiveEpsilon-eps) > 1e-9 {
				t.Errorf("GRR d=%d ε=%v: effective ε %v", d, eps, m.EffectiveEpsilon)
			}
			if !m.Satisfies(eps) {
				t.Errorf("GRR d=%d ε=%v violates its own budget", d, eps)
			}
		}
	}
}

func TestGRRDomainOne(t *testing.T) {
	g, err := fo.NewGRR(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m := GRRRatio(g); m.Ratio != 1 {
		t.Fatalf("single-input GRR ratio %v", m.Ratio)
	}
}

func TestUERatioIsTheorem1(t *testing.T) {
	// OUE: p=1/2, q=1/(e^ε+1) gives exactly ε.
	for _, eps := range []float64{0.5, 1, 2, 3} {
		q := 1 / (math.Exp(eps) + 1)
		m, err := UERatio(0.5, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.EffectiveEpsilon-eps) > 1e-9 {
			t.Errorf("OUE ε=%v: effective %v", eps, m.EffectiveEpsilon)
		}
	}
	if _, err := UERatio(0.2, 0.7); err == nil {
		t.Fatal("invalid probabilities accepted")
	}
}

// TestVPExhaustiveMatchesTheorem1 is Theorem 1 made executable: the exact
// worst-case ratio of the full validity-perturbation output distribution —
// validity flag included — equals e^ε.
func TestVPExhaustiveMatchesTheorem1(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2} {
		for _, d := range []int{2, 3, 5} {
			vp, err := core.NewVP(d, eps)
			if err != nil {
				t.Fatal(err)
			}
			m := VPRatioExhaustive(vp)
			if math.Abs(m.EffectiveEpsilon-eps) > 1e-9 {
				t.Errorf("VP d=%d ε=%v: effective ε %v", d, eps, m.EffectiveEpsilon)
			}
			if !m.Satisfies(eps) {
				t.Errorf("VP d=%d ε=%v exceeds budget: ratio %v", d, eps, m.Ratio)
			}
		}
	}
}

// TestCPExhaustiveMatchesTheorem2 is Theorem 2 made executable: enumerating
// every (label, bits) output of the correlated perturbation mechanism over
// every input pair, the worst-case ratio never exceeds e^{ε₁+ε₂}, and the
// bound is tight (equality within floating point).
func TestCPExhaustiveMatchesTheorem2(t *testing.T) {
	cases := []struct {
		c, d  int
		eps   float64
		split float64
	}{
		{2, 2, 1, 0.5},
		{2, 3, 2, 0.5},
		{3, 2, 1.5, 0.5},
		{3, 3, 2, 0.3},
		{4, 2, 3, 0.7},
	}
	for _, tc := range cases {
		cp, err := core.NewCP(tc.c, tc.d, tc.eps, tc.split)
		if err != nil {
			t.Fatal(err)
		}
		m := CPRatioExhaustive(cp)
		if !m.Satisfies(tc.eps) {
			t.Errorf("CP c=%d d=%d ε=%v split=%v: effective ε %v exceeds budget",
				tc.c, tc.d, tc.eps, tc.split, m.EffectiveEpsilon)
		}
		// Tightness: the label ratio alone achieves e^{ε₁} and the item
		// bits e^{ε₂}; jointly the mechanism should expose (nearly) the
		// full budget.
		if m.EffectiveEpsilon < tc.eps-1e-6 {
			t.Errorf("CP c=%d d=%d ε=%v: effective ε %v unexpectedly loose",
				tc.c, tc.d, tc.eps, m.EffectiveEpsilon)
		}
	}
}

func TestOLHRatio(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2} {
		o, err := fo.NewOLH(100, eps)
		if err != nil {
			t.Fatal(err)
		}
		m := OLHRatio(o)
		if !m.Satisfies(eps) {
			t.Errorf("OLH ε=%v effective %v", eps, m.EffectiveEpsilon)
		}
		if m.EffectiveEpsilon < eps-0.2 {
			t.Errorf("OLH ε=%v surprisingly loose: %v", eps, m.EffectiveEpsilon)
		}
	}
}

// TestSUEAndOUEBudgets sweeps the UE constructors and confirms the audit
// recovers the advertised ε for both.
func TestSUEAndOUEBudgets(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2, 4} {
		ue, err := fo.NewSUE(10, eps)
		if err != nil {
			t.Fatal(err)
		}
		m, err := UERatio(ue.P(), ue.Q())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.EffectiveEpsilon-eps) > 1e-9 {
			t.Errorf("SUE ε=%v effective %v", eps, m.EffectiveEpsilon)
		}
		ou, err := fo.NewOUE(10, eps)
		if err != nil {
			t.Fatal(err)
		}
		m, err = UERatio(ou.P(), ou.Q())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.EffectiveEpsilon-eps) > 1e-9 {
			t.Errorf("OUE ε=%v effective %v", eps, m.EffectiveEpsilon)
		}
	}
}

// TestEnumerateBitsCoversAll checks the enumeration helper itself.
func TestEnumerateBitsCoversAll(t *testing.T) {
	seen := map[string]bool{}
	enumerateBits(3, func(bits []bool) {
		key := ""
		for _, b := range bits {
			if b {
				key += "1"
			} else {
				key += "0"
			}
		}
		seen[key] = true
	})
	if len(seen) != 8 {
		t.Fatalf("enumerated %d of 8 outputs", len(seen))
	}
}
