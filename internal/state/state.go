// Package state defines the binary envelope that carries aggregator state
// between processes: a collection server checkpointing to disk, a WAL
// compaction snapshot, or an edge collector shipping its merged aggregate
// upstream. The envelope is deliberately dumb — it knows nothing about
// frameworks. It carries an opaque payload plus a caller-supplied
// fingerprint string, and guarantees three things on decode: the bytes are
// a state envelope (magic), the format is one this code reads (version),
// and nothing was corrupted or truncated in flight (CRC over the whole
// frame, exact-length accounting). Interpreting the fingerprint — refusing
// a payload whose framework, domain or budget does not match the receiver —
// is the caller's job (core.Protocol.UnmarshalAggregator).
package state

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Version is the envelope format version written by Encode. Decode rejects
// any other version: state is not forward-compatible, and silently
// misreading an aggregate would corrupt estimates rather than crash.
const Version = 1

// magic marks a byte slice as a state envelope. "MCSE": Multi-Class State
// Envelope.
var magic = [4]byte{'M', 'C', 'S', 'E'}

// maxFingerprintLen bounds the fingerprint so a corrupted length prefix
// cannot demand an absurd allocation before the CRC check catches it.
const maxFingerprintLen = 1 << 12

// castagnoli is the CRC-32C table; Castagnoli is hardware-accelerated on
// amd64/arm64, which matters because every WAL append pays one CRC.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode frames payload under fingerprint:
//
//	magic[4] version[u16] fpLen[u32] fp payloadLen[u32] payload crc32c[u32]
//
// All integers are little-endian; the CRC covers every byte before it.
func Encode(fingerprint string, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+2+4+len(fingerprint)+4+len(payload)+4)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(fingerprint)))
	out = append(out, fingerprint...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
}

// Decode validates an envelope and returns its fingerprint and payload. It
// never panics: corrupted, truncated or oversized inputs — including
// adversarial length prefixes — come back as errors. The payload is a
// subslice of data, not a copy.
func Decode(data []byte) (fingerprint string, payload []byte, err error) {
	// Fixed-size pieces: magic + version + two length prefixes + CRC.
	const fixed = 4 + 2 + 4 + 4 + 4
	if len(data) < fixed {
		return "", nil, fmt.Errorf("state: envelope truncated (%d bytes)", len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(crcBytes); got != want {
		return "", nil, fmt.Errorf("state: envelope CRC mismatch (got %08x, want %08x)", got, want)
	}
	if [4]byte(body[:4]) != magic {
		return "", nil, fmt.Errorf("state: bad envelope magic %q", body[:4])
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != Version {
		return "", nil, fmt.Errorf("state: envelope version %d, this build reads %d", v, Version)
	}
	fpLen := binary.LittleEndian.Uint32(body[6:10])
	if fpLen > maxFingerprintLen {
		return "", nil, fmt.Errorf("state: fingerprint length %d exceeds %d", fpLen, maxFingerprintLen)
	}
	rest := body[10:]
	if uint64(len(rest)) < uint64(fpLen)+4 {
		return "", nil, fmt.Errorf("state: envelope truncated inside fingerprint")
	}
	fingerprint = string(rest[:fpLen])
	rest = rest[fpLen:]
	payloadLen := binary.LittleEndian.Uint32(rest[:4])
	rest = rest[4:]
	// The payload must account for every remaining byte exactly; trailing
	// garbage would mean the frame was spliced or mis-concatenated.
	if uint64(payloadLen) != uint64(len(rest)) {
		return "", nil, fmt.Errorf("state: payload length %d != %d remaining bytes", payloadLen, len(rest))
	}
	return fingerprint, rest, nil
}
