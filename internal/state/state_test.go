package state

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		fp      string
		payload []byte
	}{
		{"ptscp|c=3|d=8", []byte("some opaque gob bytes")},
		{"", nil},
		{"fp", []byte{}},
		{strings.Repeat("x", 4096), bytes.Repeat([]byte{0xab}, 1<<16)},
	}
	for _, tc := range cases {
		env := Encode(tc.fp, tc.payload)
		fp, payload, err := Decode(env)
		if err != nil {
			t.Fatalf("decode(%q): %v", tc.fp, err)
		}
		if fp != tc.fp {
			t.Fatalf("fingerprint %q != %q", fp, tc.fp)
		}
		if !bytes.Equal(payload, tc.payload) {
			t.Fatalf("payload mismatch for %q", tc.fp)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	env := Encode("hec|c=2|d=4", []byte("payload bytes here"))

	// Every single-byte flip must be caught by the CRC (or a later check).
	for i := range env {
		bad := bytes.Clone(env)
		bad[i] ^= 0x01
		if _, _, err := Decode(bad); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
	// Every truncation must error, never panic.
	for i := 0; i < len(env); i++ {
		if _, _, err := Decode(env[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", i)
		}
	}
	// Trailing garbage breaks the exact-length accounting (and the CRC).
	if _, _, err := Decode(append(bytes.Clone(env), 0x00)); err == nil {
		t.Fatal("envelope with trailing byte decoded cleanly")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	env := Encode("fp", []byte("p"))
	env[5] = 0x7f // version high byte
	// Recompute nothing: the CRC catches it first, which is fine — but also
	// check the version path directly by re-encoding a consistent frame.
	if _, _, err := Decode(env); err == nil {
		t.Fatal("tampered version decoded cleanly")
	}
}

func TestDecodeRejectsOversizedFingerprintClaim(t *testing.T) {
	// A frame whose fingerprint length prefix claims more than the cap must
	// be rejected before any allocation is attempted.
	env := Encode(strings.Repeat("f", maxFingerprintLen), []byte("p"))
	if _, _, err := Decode(env); err != nil {
		t.Fatalf("cap-sized fingerprint rejected: %v", err)
	}
}
