package dataset

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/xrand"
)

// SYN1Frequencies are the label-item pair frequencies the paper sweeps in
// the Fig. 5(a) correlation-strength analysis.
var SYN1Frequencies = []int{1_000, 10_000, 100_000, 1_000_000}

// SYN1 is the variance-analysis dataset of Fig. 5(a): four classes and four
// items with pair counts {10³, 10⁴, 10⁵, 10⁶} arranged as a Latin square,
// so every class size n and every item marginal f(I) is fixed at
// 1,111,000·scale while the tracked pair frequency f(C, I) varies — exactly
// the "fix f(I) = n, vary f(C,I)" setup the paper describes.
func SYN1(scale float64) *core.Dataset {
	const k = 4
	counts := make([][]int, k)
	for c := 0; c < k; c++ {
		counts[c] = make([]int, k)
		for i := 0; i < k; i++ {
			counts[c][i] = scaleCount(SYN1Frequencies[(i-c+k)%k], scale)
		}
	}
	return exactCounts("SYN1", counts, k)
}

// SYN2ClassSizes are the class sizes n the paper sweeps in Fig. 5(b).
var SYN2ClassSizes = []int{13_000, 211_000, 1_210_000, 3_010_000}

// SYN2 is the class-distribution dataset of Fig. 5(b): the tracked item's
// pair frequency is fixed at f(C, I) = 10⁴ in every class while the class
// sizes n vary over {1.3×10⁴, 2.11×10⁵, 1.21×10⁶, 3.01×10⁶}; the remaining
// class mass is spread evenly over the other three items.
func SYN2(scale float64) *core.Dataset {
	const k = 4
	const tracked = 10_000
	counts := make([][]int, k)
	for c := 0; c < k; c++ {
		counts[c] = make([]int, k)
		counts[c][0] = scaleCount(tracked, scale)
		rest := SYN2ClassSizes[c] - tracked
		for i := 1; i < k; i++ {
			counts[c][i] = scaleCount(rest/(k-1), scale)
		}
	}
	return exactCounts("SYN2", counts, k)
}

// SynTopKConfig parameterizes SYN3/SYN4 (Fig. 10): 20,000 items, 5 million
// instances, class sizes drawn from a normal distribution, per-class item
// popularity exponential with scale in [0.01, 0.1].
type SynTopKConfig struct {
	Classes int
	Items   int
	Users   int
	// HeadSize is the per-class "top" window the overlap property is
	// defined over (the paper uses the top 20).
	HeadSize int
	// Global controls whether classes share globally frequent items
	// (SYN3) or have disjoint heads (SYN4).
	Global bool
}

// DefaultSynTopK returns the paper's SYN3/SYN4 configuration for the given
// class count.
func DefaultSynTopK(classes int, global bool) SynTopKConfig {
	return SynTopKConfig{
		Classes:  classes,
		Items:    20_000,
		Users:    5_000_000,
		HeadSize: 20,
		Global:   global,
	}
}

// SynTopK builds SYN3 (Global=true) or SYN4 (Global=false).
//
// Per class, item popularity follows the paper's recipe: ranks are weighted
// by an exponential distribution whose scale parameter is drawn uniformly
// from [0.01, 0.1] (rank fraction x has weight e^{-x/θ}), so each class has
// a sharply decaying head. The rank-to-item assignment then realizes the
// overlap property:
//
//   - SYN3: each class fills its head by sampling 13 of a shared 20-item
//     global pool plus class-unique items; two classes then share
//     13²/20 ≈ 8 of their top-20 on average — the paper's "average of
//     eight overlapping items among the top 20 between any two classes".
//   - SYN4: heads are class-unique items, so no item is globally frequent.
//
// Tail ranks map to the remaining items through a class-specific shuffle.
func SynTopK(cfg SynTopKConfig, seed uint64, scale float64) (*core.Dataset, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("dataset: SynTopK needs at least 2 classes, got %d", cfg.Classes)
	}
	if cfg.HeadSize <= 0 || cfg.Items < cfg.HeadSize*(cfg.Classes+1) {
		return nil, fmt.Errorf("dataset: SynTopK needs items ≥ head·(classes+1), got d=%d head=%d c=%d",
			cfg.Items, cfg.HeadSize, cfg.Classes)
	}
	r := xrand.New(seed)
	name := "SYN4"
	if cfg.Global {
		name = "SYN3"
	}
	users := scaleCount(cfg.Users, scale)
	classSizes := normalizedPositive(cfg.Classes, 1, 0.3, 0.2, users, r)

	// The shared global pool (used only by SYN3).
	globalPool := make([]int, cfg.HeadSize)
	for i := range globalPool {
		globalPool[i] = i // items 0..head-1 are the global pool
	}
	// Class-unique item blocks start after the pool.
	nextUnique := cfg.HeadSize

	perClass := make([]*xrand.Categorical, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		// Rank weights: exponential with per-class scale θ ∈ [0.01, 0.1].
		// The decay is applied per rank (not per rank fraction) so the
		// designed head stays identifiable above sampling noise at every
		// scale factor — otherwise the engineered top-20 overlap property
		// would wash out in scaled-down runs.
		theta := 0.01 + 0.09*r.Float64()
		decay := 0.1 + 2*theta
		weights := make([]float64, cfg.Items)
		for rank := 0; rank < cfg.Items; rank++ {
			weights[rank] = math.Exp(-float64(rank) * decay)
		}
		// Head items for this class.
		head := make([]int, 0, cfg.HeadSize)
		used := make(map[int]bool, cfg.Items)
		if cfg.Global {
			// 13 of the 20 global-pool items (scaled proportionally for
			// non-default head sizes), in random positions.
			picks := (cfg.HeadSize*13 + 10) / 20
			if picks > cfg.HeadSize {
				picks = cfg.HeadSize
			}
			for _, gi := range r.Perm(cfg.HeadSize)[:picks] {
				head = append(head, globalPool[gi])
			}
		}
		for len(head) < cfg.HeadSize {
			head = append(head, nextUnique)
			nextUnique++
		}
		r.Shuffle(len(head), func(i, j int) { head[i], head[j] = head[j], head[i] })
		for _, h := range head {
			used[h] = true
		}
		// Tail: the remaining items in class-shuffled order.
		tail := make([]int, 0, cfg.Items-len(head))
		for it := 0; it < cfg.Items; it++ {
			if !used[it] {
				tail = append(tail, it)
			}
		}
		r.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
		// rankToItem: head ranks then tail ranks.
		itemWeights := make([]float64, cfg.Items)
		for rank, w := range weights {
			var item int
			if rank < len(head) {
				item = head[rank]
			} else {
				item = tail[rank-len(head)]
			}
			itemWeights[item] = w
		}
		cat, err := xrand.NewCategorical(itemWeights)
		if err != nil {
			return nil, fmt.Errorf("dataset: SynTopK class %d: %w", c, err)
		}
		perClass[c] = cat
	}
	return sampled(name, classSizes, perClass, cfg.Items, r), nil
}
