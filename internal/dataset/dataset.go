// Package dataset builds every dataset used in the paper's evaluation
// (Section VII-A). The four synthetic datasets SYN1–SYN4 are generated
// exactly as the paper specifies. The four real-world datasets (Kaggle
// downloads unavailable offline) are replaced by deterministic simulators
// that preserve the properties the experiments exercise: user counts, class
// counts and skew, item-domain sizes, popularity skew, and the cross-class
// overlap of top items. Every generator takes an explicit seed and a scale
// factor in (0, 1] that shrinks N while preserving distribution shape, so
// tests run in milliseconds and `cmd/mcimbench -scale 1` reproduces paper
// size.
package dataset

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/xrand"
)

// scaleCount shrinks a paper-scale population count by scale, keeping at
// least one user so class structure survives extreme scales.
func scaleCount(n int, scale float64) int {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("dataset: scale %v outside (0,1]", scale))
	}
	s := int(float64(n) * scale)
	if s < 1 {
		s = 1
	}
	return s
}

// exactCounts builds a dataset with exactly counts[c][i] copies of each
// pair — used by SYN1/SYN2 where the paper fixes pair frequencies, and by
// tests that need known ground truth.
func exactCounts(name string, counts [][]int, items int) *core.Dataset {
	total := 0
	for _, row := range counts {
		for _, n := range row {
			total += n
		}
	}
	d := &core.Dataset{
		Pairs:   make([]core.Pair, 0, total),
		Classes: len(counts),
		Items:   items,
		Name:    name,
	}
	for c, row := range counts {
		for i, n := range row {
			for j := 0; j < n; j++ {
				d.Pairs = append(d.Pairs, core.Pair{Class: c, Item: i})
			}
		}
	}
	return d
}

// sampled builds a dataset by drawing, for each class c, classSizes[c]
// items from the class's categorical item distribution. Item identities are
// relabelled through a random permutation: real catalogues assign IDs
// independently of popularity, and without this the binary encodings of
// popular items would share prefixes, unrealistically flattering the PEM
// baseline (whose false-positive-prefix weakness the paper targets).
func sampled(name string, classSizes []int, perClass []*xrand.Categorical, items int, r *xrand.Rand) *core.Dataset {
	total := 0
	for _, n := range classSizes {
		total += n
	}
	d := &core.Dataset{
		Pairs:   make([]core.Pair, 0, total),
		Classes: len(classSizes),
		Items:   items,
		Name:    name,
	}
	relabel := r.Perm(items)
	for c, n := range classSizes {
		for j := 0; j < n; j++ {
			d.Pairs = append(d.Pairs, core.Pair{Class: c, Item: relabel[perClass[c].Sample(r)]})
		}
	}
	return d
}

// normalizedPositive draws k weights from N(mu, sigma) truncated below at
// floor and normalizes them to sum to total, returning integer sizes that
// sum exactly to total.
func normalizedPositive(k int, mu, sigma, floor float64, total int, r *xrand.Rand) []int {
	w := make([]float64, k)
	sum := 0.0
	for i := range w {
		v := mu + sigma*r.NormFloat64()
		if v < floor {
			v = floor
		}
		w[i] = v
		sum += v
	}
	sizes := make([]int, k)
	assigned := 0
	for i := range w {
		sizes[i] = int(w[i] / sum * float64(total))
		assigned += sizes[i]
	}
	// Distribute rounding leftovers deterministically.
	for i := 0; assigned < total; i = (i + 1) % k {
		sizes[i]++
		assigned++
	}
	return sizes
}
