package dataset

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/xrand"
)

// RetailSpec describes a simulated recommendation-style dataset for top-k
// mining: a global Zipf popularity over a large item catalogue, per-class
// log-normal jitter of the popularity (so class top lists overlap heavily
// but not identically — the "globally frequent items" property Algorithm 1
// exploits), and skewed class sizes.
type RetailSpec struct {
	Name string
	// ClassSizes are the per-class record counts at scale 1.
	ClassSizes []int
	// Items is the catalogue size.
	Items int
	// ZipfExponent is the global popularity decay.
	ZipfExponent float64
	// Jitter is the standard deviation of the per-class log-popularity
	// noise; 0 makes all classes identical, large values decouple them.
	Jitter float64
}

// AnimeSpec mirrors the MyAnimeList dataset as the paper uses it: gender as
// the label (two classes, roughly 64/36 male-skewed), 14,000 titles, and
// the 20% record sample of the 35M records (7M pairs at scale 1). Viewing
// habits share a strong global head across genders, with gender-specific
// reordering.
func AnimeSpec() RetailSpec {
	return RetailSpec{
		Name:         "Anime",
		ClassSizes:   []int{4_480_000, 2_520_000}, // 64% / 36% of 7M
		Items:        14_000,
		ZipfExponent: 1.05,
		Jitter:       0.6,
	}
}

// JDSpec mirrors the JD Contest dataset: five age-group classes with the
// published per-class record counts (850k, 4M, 3M, 314k, 170k — the 20%
// sample the paper uses), 28,000 items, and a shared global head. Classes 4
// and 5 are data-starved, which drives the Fig. 8 per-class behaviour.
func JDSpec() RetailSpec {
	return RetailSpec{
		Name:         "JD",
		ClassSizes:   []int{850_000, 4_000_000, 3_000_000, 314_000, 170_000},
		Items:        28_000,
		ZipfExponent: 1.10,
		Jitter:       0.5,
	}
}

// Retail builds a simulated retail/recommendation dataset from spec.
func Retail(spec RetailSpec, seed uint64, scale float64) (*core.Dataset, error) {
	if len(spec.ClassSizes) < 2 {
		return nil, fmt.Errorf("dataset: retail spec %q needs ≥2 classes", spec.Name)
	}
	if spec.Items < 2 {
		return nil, fmt.Errorf("dataset: retail spec %q needs ≥2 items", spec.Name)
	}
	r := xrand.New(seed)
	c := len(spec.ClassSizes)
	// Global popularity: Zipf over the catalogue.
	global := make([]float64, spec.Items)
	for i := range global {
		global[i] = math.Pow(float64(i+1), -spec.ZipfExponent)
	}
	perClass := make([]*xrand.Categorical, c)
	for cl := 0; cl < c; cl++ {
		w := make([]float64, spec.Items)
		for i := range w {
			// Log-normal jitter: class-specific taste on top of the
			// global head. exp(N(0, jitter)) keeps weights positive.
			w[i] = global[i] * math.Exp(spec.Jitter*r.NormFloat64())
		}
		cat, err := xrand.NewCategorical(w)
		if err != nil {
			return nil, fmt.Errorf("dataset: retail %q class %d: %w", spec.Name, cl, err)
		}
		perClass[cl] = cat
	}
	sizes := make([]int, c)
	for cl, n := range spec.ClassSizes {
		sizes[cl] = scaleCount(n, scale)
	}
	return sampled(spec.Name, sizes, perClass, spec.Items, r), nil
}

// Anime builds the simulated MyAnimeList dataset.
func Anime(seed uint64, scale float64) (*core.Dataset, error) {
	return Retail(AnimeSpec(), seed, scale)
}

// JD builds the simulated JD Contest dataset.
func JD(seed uint64, scale float64) (*core.Dataset, error) {
	return Retail(JDSpec(), seed, scale)
}
