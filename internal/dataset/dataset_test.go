package dataset

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/xrand"
)

func TestSYN1LatinSquare(t *testing.T) {
	d := SYN1(1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Classes != 4 || d.Items != 4 {
		t.Fatalf("domains %d×%d", d.Classes, d.Items)
	}
	f := d.TrueFrequencies()
	// Every row and column must contain each frequency exactly once, so all
	// class sizes and item marginals equal 1,111,000.
	for c := 0; c < 4; c++ {
		rowSum, colSum := 0.0, 0.0
		for i := 0; i < 4; i++ {
			rowSum += f[c][i]
			colSum += f[i][c]
		}
		if rowSum != 1_111_000 || colSum != 1_111_000 {
			t.Fatalf("class %d row %v col %v", c, rowSum, colSum)
		}
	}
	// The tracked pairs (class 0) carry the four paper frequencies.
	for i, want := range SYN1Frequencies {
		if f[0][i] != float64(want) {
			t.Fatalf("f(0,%d) = %v want %d", i, f[0][i], want)
		}
	}
}

func TestSYN1Scale(t *testing.T) {
	d := SYN1(0.01)
	f := d.TrueFrequencies()
	if f[0][3] != 10_000 {
		t.Fatalf("scaled f(0,3) = %v", f[0][3])
	}
	if f[0][0] != 10 {
		t.Fatalf("scaled f(0,0) = %v", f[0][0])
	}
}

func TestSYN2ClassSizes(t *testing.T) {
	d := SYN2(1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := d.ClassCounts()
	for c, want := range SYN2ClassSizes {
		// Integer division of the remainder across 3 items loses at most 2.
		if math.Abs(float64(counts[c]-want)) > 3 {
			t.Fatalf("class %d size %d want %d", c, counts[c], want)
		}
	}
	f := d.TrueFrequencies()
	for c := 0; c < 4; c++ {
		if f[c][0] != 10_000 {
			t.Fatalf("tracked pair f(%d,0) = %v", c, f[c][0])
		}
	}
}

func TestSynTopKShape(t *testing.T) {
	cfg := SynTopKConfig{Classes: 10, Items: 2000, Users: 50000, HeadSize: 20, Global: true}
	d, err := SynTopK(cfg, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.N() != 50000 || d.Classes != 10 || d.Items != 2000 {
		t.Fatalf("shape N=%d c=%d d=%d", d.N(), d.Classes, d.Items)
	}
	if d.Name != "SYN3" {
		t.Fatalf("name %q", d.Name)
	}
	d4, err := SynTopK(SynTopKConfig{Classes: 10, Items: 2000, Users: 50000, HeadSize: 20, Global: false}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d4.Name != "SYN4" {
		t.Fatalf("name %q", d4.Name)
	}
}

// topOverlap returns the average top-k overlap between class pairs.
func topOverlap(d *core.Dataset, k int) float64 {
	f := d.TrueFrequencies()
	tops := make([][]int, d.Classes)
	for c := range f {
		tops[c] = metrics.TopK(f[c], k)
	}
	pairs, overlap := 0, 0
	for a := 0; a < d.Classes; a++ {
		for b := a + 1; b < d.Classes; b++ {
			set := map[int]bool{}
			for _, v := range tops[a] {
				set[v] = true
			}
			for _, v := range tops[b] {
				if set[v] {
					overlap++
				}
			}
			pairs++
		}
	}
	return float64(overlap) / float64(pairs)
}

// TestSynTopKOverlap verifies the defining SYN3/SYN4 property: about eight
// of the top-20 items are shared between any two classes in SYN3 and almost
// none in SYN4.
func TestSynTopKOverlap(t *testing.T) {
	big := SynTopKConfig{Classes: 10, Items: 5000, Users: 400000, HeadSize: 20, Global: true}
	d3, err := SynTopK(big, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	o3 := topOverlap(d3, 20)
	if o3 < 5 || o3 > 12 {
		t.Fatalf("SYN3 average top-20 overlap %v, want ≈8", o3)
	}
	big.Global = false
	d4, err := SynTopK(big, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	o4 := topOverlap(d4, 20)
	if o4 > 2 {
		t.Fatalf("SYN4 average top-20 overlap %v, want ≈0", o4)
	}
}

func TestSynTopKErrors(t *testing.T) {
	if _, err := SynTopK(SynTopKConfig{Classes: 1, Items: 100, Users: 10, HeadSize: 5}, 1, 1); err == nil {
		t.Fatal("1 class accepted")
	}
	if _, err := SynTopK(SynTopKConfig{Classes: 10, Items: 50, Users: 10, HeadSize: 20}, 1, 1); err == nil {
		t.Fatal("tiny item domain accepted")
	}
}

func TestSynTopKDeterminism(t *testing.T) {
	cfg := DefaultSynTopK(10, true)
	a, err := SynTopK(cfg, 3, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SynTopK(cfg, 3, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatal("same seed produced different pairs")
		}
	}
	c, err := SynTopK(cfg, 4, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Pairs {
		if a.Pairs[i] != c.Pairs[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestDiabetesShape(t *testing.T) {
	ds, err := Diabetes(5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	spec := DiabetesSpec()
	if len(ds) != len(spec.Features) {
		t.Fatalf("%d feature datasets", len(ds))
	}
	for i, d := range ds {
		if err := d.Validate(); err != nil {
			t.Fatalf("feature %d: %v", i, err)
		}
		if d.Classes != 2 {
			t.Fatalf("feature %d classes %d", i, d.Classes)
		}
		if d.Items != spec.Features[i].Domain {
			t.Fatalf("feature %d domain %d want %d", i, d.Items, spec.Features[i].Domain)
		}
	}
	// The positive rate must be near the spec.
	pos, total := 0, 0
	for _, d := range ds {
		for _, p := range d.Pairs {
			total++
			pos += p.Class
		}
	}
	rate := float64(pos) / float64(total)
	if math.Abs(rate-spec.PositiveRate) > 0.02 {
		t.Fatalf("positive rate %v want %v", rate, spec.PositiveRate)
	}
}

// TestMedicalLabelShiftsDistribution verifies that the two classes see
// different item distributions — the classwise structure the frequency
// estimators must recover.
func TestMedicalLabelShiftsDistribution(t *testing.T) {
	spec := MedicalSpec{
		Name:         "test",
		Users:        40000,
		PositiveRate: 0.5,
		Features:     []FeatureSpec{{Name: "f", Domain: 20, Skew: 1, Shift: 0.5}},
	}
	ds, err := Medical(spec, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := ds[0].TrueFrequencies()
	mode0 := metrics.TopK(f[0], 1)[0]
	mode1 := metrics.TopK(f[1], 1)[0]
	if mode0 == mode1 {
		t.Fatalf("label shift had no effect: both modes at %d", mode0)
	}
}

func TestHeartShape(t *testing.T) {
	ds, err := Heart(6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 21 {
		t.Fatalf("%d features", len(ds))
	}
	maxDomain := 0
	for _, d := range ds {
		if d.Items > maxDomain {
			maxDomain = d.Items
		}
	}
	if maxDomain != 84 {
		t.Fatalf("largest domain %d want 84", maxDomain)
	}
}

func TestMedicalErrors(t *testing.T) {
	if _, err := Medical(MedicalSpec{Name: "x", Users: 10, PositiveRate: 0.5}, 1, 1); err == nil {
		t.Fatal("no features accepted")
	}
	spec := DiabetesSpec()
	spec.PositiveRate = 1.5
	if _, err := Medical(spec, 1, 1); err == nil {
		t.Fatal("bad positive rate accepted")
	}
}

func TestJDClassRatios(t *testing.T) {
	d, err := JD(8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Classes != 5 || d.Items != 28000 {
		t.Fatalf("shape c=%d d=%d", d.Classes, d.Items)
	}
	counts := d.ClassCounts()
	spec := JDSpec()
	for c := range counts {
		want := int(float64(spec.ClassSizes[c]) * 0.01)
		if math.Abs(float64(counts[c]-want)) > 2 {
			t.Fatalf("class %d size %d want %d", c, counts[c], want)
		}
	}
	// Class 1 must dwarf class 4 (the Fig. 8 imbalance).
	if counts[1] < 10*counts[4] {
		t.Fatalf("imbalance missing: %v", counts)
	}
}

// TestRetailGlobalHead verifies the cross-class overlap of top items that
// Algorithm 1's global candidate generation exploits.
func TestRetailGlobalHead(t *testing.T) {
	d, err := Anime(10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if d.Classes != 2 || d.Items != 14000 {
		t.Fatalf("shape c=%d d=%d", d.Classes, d.Items)
	}
	overlap := topOverlap(d, 20)
	if overlap < 4 {
		t.Fatalf("anime top-20 overlap %v, want a shared global head", overlap)
	}
}

func TestRetailErrors(t *testing.T) {
	if _, err := Retail(RetailSpec{Name: "x", ClassSizes: []int{10}, Items: 100}, 1, 1); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := Retail(RetailSpec{Name: "x", ClassSizes: []int{10, 10}, Items: 1}, 1, 1); err == nil {
		t.Fatal("single item accepted")
	}
}

func TestScaleCountPanics(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("scale %v did not panic", s)
				}
			}()
			scaleCount(100, s)
		}()
	}
	if scaleCount(100, 0.001) != 1 {
		t.Fatal("scaleCount floor missing")
	}
}

func TestNormalizedPositiveSumsExactly(t *testing.T) {
	r := xrand.New(3)
	sizes := normalizedPositive(7, 1, 0.5, 0.1, 12345, r)
	sum := 0
	for _, s := range sizes {
		if s < 0 {
			t.Fatalf("negative size %d", s)
		}
		sum += s
	}
	if sum != 12345 {
		t.Fatalf("sizes sum to %d", sum)
	}
}
