package dataset

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/xrand"
)

// FeatureSpec describes one categorical feature of a simulated medical
// survey dataset: its domain size and how strongly the class label shifts
// its value distribution.
type FeatureSpec struct {
	Name string
	// Domain is the number of distinct (rounded) values.
	Domain int
	// Skew is the Zipf-like decay exponent of the value distribution; a
	// larger skew concentrates mass on few values, as categorical survey
	// answers do.
	Skew float64
	// Shift is the fraction of the domain by which the positive class's
	// mode is displaced — this is what creates classwise structure for the
	// frequency-estimation task to recover.
	Shift float64
}

// MedicalSpec describes a simulated two-class medical dataset in the shape
// the paper uses for frequency estimation: users are divided into one group
// per feature, and each group contributes (label, feature value) pairs.
type MedicalSpec struct {
	Name string
	// Users is the total user count at scale 1 (divided across features).
	Users int
	// PositiveRate is the fraction of users with the positive label.
	PositiveRate float64
	Features     []FeatureSpec
}

// DiabetesSpec mirrors the Comprehensive Diabetes Clinical dataset:
// 100,000 individuals, eight features, continuous values rounded so the
// largest feature domain has about 600 items, and an 8.5% diabetic rate.
func DiabetesSpec() MedicalSpec {
	return MedicalSpec{
		Name:         "Diabetes",
		Users:        100_000,
		PositiveRate: 0.085,
		Features: []FeatureSpec{
			{Name: "gender", Domain: 3, Skew: 0.6, Shift: 0.10},
			{Name: "hypertension", Domain: 2, Skew: 1.0, Shift: 0.40},
			{Name: "heart_disease", Domain: 2, Skew: 1.2, Shift: 0.40},
			{Name: "smoking_history", Domain: 6, Skew: 0.8, Shift: 0.20},
			{Name: "age", Domain: 102, Skew: 0.4, Shift: 0.25},
			{Name: "blood_glucose", Domain: 600, Skew: 0.5, Shift: 0.20},
			{Name: "hba1c", Domain: 72, Skew: 0.6, Shift: 0.30},
			{Name: "bmi", Domain: 400, Skew: 0.5, Shift: 0.15},
		},
	}
}

// HeartSpec mirrors the Heart Disease Health Indicators dataset (BRFSS
// 2015): 253,680 responses, 21 categorical features with the largest domain
// 84, and a 9.4% positive rate.
func HeartSpec() MedicalSpec {
	binary := func(name string, shift float64) FeatureSpec {
		return FeatureSpec{Name: name, Domain: 2, Skew: 1.0, Shift: shift}
	}
	return MedicalSpec{
		Name:         "Heart",
		Users:        253_680,
		PositiveRate: 0.094,
		Features: []FeatureSpec{
			binary("high_bp", 0.45),
			binary("high_chol", 0.40),
			binary("chol_check", 0.05),
			{Name: "bmi", Domain: 84, Skew: 0.5, Shift: 0.15},
			binary("smoker", 0.20),
			binary("stroke", 0.35),
			binary("diabetes_hist", 0.35),
			binary("phys_activity", 0.15),
			binary("fruits", 0.05),
			binary("veggies", 0.05),
			binary("heavy_alcohol", 0.10),
			binary("healthcare", 0.05),
			binary("no_doc_cost", 0.10),
			{Name: "gen_health", Domain: 5, Skew: 0.7, Shift: 0.35},
			{Name: "mental_health", Domain: 31, Skew: 0.9, Shift: 0.10},
			{Name: "phys_health", Domain: 31, Skew: 0.9, Shift: 0.25},
			binary("diff_walk", 0.30),
			binary("sex", 0.08),
			{Name: "age_group", Domain: 13, Skew: 0.3, Shift: 0.30},
			{Name: "education", Domain: 6, Skew: 0.4, Shift: 0.10},
			{Name: "income", Domain: 8, Skew: 0.3, Shift: 0.12},
		},
	}
}

// Medical builds one dataset per feature, each holding Users/len(Features)
// users with (label, value) pairs — the paper's per-feature user-partition
// setup for the frequency estimation experiments of Fig. 6.
func Medical(spec MedicalSpec, seed uint64, scale float64) ([]*core.Dataset, error) {
	if len(spec.Features) == 0 {
		return nil, fmt.Errorf("dataset: medical spec %q has no features", spec.Name)
	}
	if !(spec.PositiveRate > 0 && spec.PositiveRate < 1) {
		return nil, fmt.Errorf("dataset: medical spec %q positive rate %v outside (0,1)",
			spec.Name, spec.PositiveRate)
	}
	r := xrand.New(seed)
	perFeature := scaleCount(spec.Users/len(spec.Features), scale)
	out := make([]*core.Dataset, 0, len(spec.Features))
	for _, f := range spec.Features {
		neg, err := featureSampler(f, 0)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s/%s: %w", spec.Name, f.Name, err)
		}
		pos, err := featureSampler(f, f.Shift)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s/%s: %w", spec.Name, f.Name, err)
		}
		ds := &core.Dataset{
			Pairs:   make([]core.Pair, 0, perFeature),
			Classes: 2,
			Items:   f.Domain,
			Name:    spec.Name + "/" + f.Name,
		}
		for u := 0; u < perFeature; u++ {
			label := 0
			sampler := neg
			if r.Bernoulli(spec.PositiveRate) {
				label = 1
				sampler = pos
			}
			ds.Pairs = append(ds.Pairs, core.Pair{Class: label, Item: sampler.Sample(r)})
		}
		out = append(out, ds)
	}
	return out, nil
}

// featureSampler builds a value sampler whose mass decays Zipf-like from a
// mode displaced by shift·domain — the positive class sees a shifted world.
func featureSampler(f FeatureSpec, shift float64) (*xrand.Categorical, error) {
	if f.Domain <= 0 {
		return nil, fmt.Errorf("non-positive domain %d", f.Domain)
	}
	mode := int(shift * float64(f.Domain))
	if mode >= f.Domain {
		mode = f.Domain - 1
	}
	w := make([]float64, f.Domain)
	for v := range w {
		dist := math.Abs(float64(v - mode))
		w[v] = math.Pow(dist+1, -f.Skew-0.5)
	}
	return xrand.NewCategorical(w)
}

// Diabetes builds the simulated Diabetes per-feature datasets.
func Diabetes(seed uint64, scale float64) ([]*core.Dataset, error) {
	return Medical(DiabetesSpec(), seed, scale)
}

// Heart builds the simulated Heart-Disease per-feature datasets.
func Heart(seed uint64, scale float64) ([]*core.Dataset, error) {
	return Medical(HeartSpec(), seed, scale)
}
