package mcim_test

import (
	"math"
	"testing"

	mcim "repro"
)

// TestPublicAPIFrequency exercises the facade end to end the way the README
// quickstart does.
func TestPublicAPIFrequency(t *testing.T) {
	rng := mcim.NewRand(42)
	data := &mcim.Dataset{Classes: 2, Items: 8, Name: "api"}
	for i := 0; i < 20000; i++ {
		p := mcim.Pair{Class: 0, Item: 2}
		if i%3 == 0 {
			p = mcim.Pair{Class: 1, Item: 5}
		}
		data.Pairs = append(data.Pairs, p)
	}
	est, err := mcim.NewPTSCP(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := est.Estimate(data, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth := data.TrueFrequencies()
	if math.Abs(freq[0][2]-truth[0][2]) > 2000 {
		t.Fatalf("f(0,2) estimate %v truth %v", freq[0][2], truth[0][2])
	}
	if math.Abs(freq[1][5]-truth[1][5]) > 2000 {
		t.Fatalf("f(1,5) estimate %v truth %v", freq[1][5], truth[1][5])
	}
}

// TestPublicAPITopK exercises the miner facade.
func TestPublicAPITopK(t *testing.T) {
	rng := mcim.NewRand(43)
	data := &mcim.Dataset{Classes: 2, Items: 64, Name: "api"}
	for i := 0; i < 60000; i++ {
		item := rng.Intn(4) // head
		if rng.Bernoulli(0.3) {
			item = rng.Intn(64)
		}
		data.Pairs = append(data.Pairs, mcim.Pair{Class: i % 2, Item: item})
	}
	miner := mcim.NewPTSMiner(mcim.OptimizedOptions())
	res, err := miner.Mine(data, 4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 2 {
		t.Fatalf("per-class results %d", len(res.PerClass))
	}
	hit := 0
	for _, item := range res.PerClass[0] {
		if item < 4 {
			hit++
		}
	}
	if hit < 2 {
		t.Fatalf("top-4 recovery too weak: %v", res.PerClass[0])
	}
}

// TestPublicAPIMechanisms smoke-tests every exported constructor.
func TestPublicAPIMechanisms(t *testing.T) {
	rng := mcim.NewRand(44)
	for _, build := range []func() (mcim.Mechanism, error){
		func() (mcim.Mechanism, error) { return mcim.NewGRR(10, 1) },
		func() (mcim.Mechanism, error) { return mcim.NewOUE(10, 1) },
		func() (mcim.Mechanism, error) { return mcim.NewSUE(10, 1) },
		func() (mcim.Mechanism, error) { return mcim.NewOLH(10, 1) },
		func() (mcim.Mechanism, error) { return mcim.NewAdaptive(10, 1) },
	} {
		m, err := build()
		if err != nil {
			t.Fatal(err)
		}
		acc := m.NewAccumulator()
		for i := 0; i < 500; i++ {
			acc.Add(m.Perturb(i%10, rng))
		}
		if acc.N() != 500 {
			t.Fatalf("%s accumulated %d", m.Name(), acc.N())
		}
		est := acc.EstimateAll()
		if len(est) != 10 {
			t.Fatalf("%s estimates %d", m.Name(), len(est))
		}
	}
	vp, err := mcim.NewVP(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	vacc := vp.NewAccumulator()
	vacc.Add(vp.Perturb(3, rng))
	vacc.Add(vp.Perturb(mcim.Invalid, rng))
	if vacc.Total() != 2 {
		t.Fatal("VP accumulator total")
	}
	cp, err := mcim.NewCP(3, 10, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cacc := cp.NewAccumulator()
	cacc.Add(cp.Perturb(mcim.Pair{Class: 1, Item: 2}, rng))
	if cacc.Total() != 1 {
		t.Fatal("CP accumulator total")
	}
}

// TestPublicAPIMeans exercises the numerical extension facade.
func TestPublicAPIMeans(t *testing.T) {
	rng := mcim.NewRand(45)
	data := &mcim.NumericDataset{Classes: 2, Name: "api"}
	for i := 0; i < 30000; i++ {
		x := 0.5
		cl := 0
		if i%2 == 0 {
			x, cl = -0.5, 1
		}
		data.Values = append(data.Values, mcim.NumericValue{Class: cl, X: x})
	}
	cp, err := mcim.NewCPMeanEstimator(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	means, err := cp.EstimateMeans(data, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(means[0]-0.5) > 0.15 || math.Abs(means[1]+0.5) > 0.15 {
		t.Fatalf("means %v", means)
	}
}
