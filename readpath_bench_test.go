// Read-path and recovery benchmarks: GET /estimates with the versioned
// estimate cache on, off, and under concurrent ingest, and startup WAL
// replay sequential versus parallel. Like the ingestion benchmarks these
// run over real HTTP on a loopback listener; `make bench-json` snapshots
// them into BENCH_ingest.json (informational — new benchmarks gate only
// once a baseline holds them).
package mcim_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/collect"
	"repro/internal/wal"
)

// benchReadServer starts a collection server with GOMAXPROCS shards and
// the given extra options on a loopback listener.
func benchReadServer(b *testing.B, opts ...collect.ServerOption) (*collect.Server, *httptest.Server) {
	b.Helper()
	srv, err := collect.NewServer(benchProtocol(b), append([]collect.ServerOption{collect.WithShards(0)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return srv, ts
}

// benchGet fetches url and drains the body, failing on any non-200.
func benchGet(b *testing.B, hc *http.Client, url string) {
	b.Helper()
	resp, err := hc.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %s", resp.Status)
	}
}

// benchPreload posts batches reports into the server so the estimate body
// is non-trivial.
func benchPreload(b *testing.B, ts *httptest.Server, batches int) {
	b.Helper()
	bodies := benchWireBinaryBodies(b, batches, benchBatchSize)
	hc := ts.Client()
	for _, body := range bodies {
		benchPostType(b, hc, ts.URL+"/reports", collect.BinaryContentType, body)
	}
}

// BenchmarkEstimateRead measures GET /estimates — the poll every dashboard
// and mining loop sits in.
//
//	uncached:            every read merges the shards and re-renders
//	                     (WithEstimateCacheDisabled — the pre-cache path).
//	cached:              quiescent server; after the first render every
//	                     read is a version-checked replay of cached bytes.
//	cached-under-ingest: one background writer streams binary batches
//	                     while the reads poll — hits between writes,
//	                     recomputes only when the version moved.
func BenchmarkEstimateRead(b *testing.B) {
	const preloadBatches = 8
	b.Run("uncached", func(b *testing.B) {
		_, ts := benchReadServer(b, collect.WithEstimateCacheDisabled())
		benchPreload(b, ts, preloadBatches)
		hc := ts.Client()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, hc, ts.URL+"/estimates")
		}
	})
	b.Run("cached", func(b *testing.B) {
		_, ts := benchReadServer(b)
		benchPreload(b, ts, preloadBatches)
		hc := ts.Client()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, hc, ts.URL+"/estimates")
		}
	})
	b.Run("cached-under-ingest", func(b *testing.B) {
		_, ts := benchReadServer(b)
		benchPreload(b, ts, preloadBatches)
		bodies := benchWireBinaryBodies(b, 16, benchBatchSize)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			hc := ts.Client()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					benchPostType(b, hc, ts.URL+"/reports", collect.BinaryContentType, bodies[i%len(bodies)])
				}
			}
		}()
		hc := ts.Client()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, hc, ts.URL+"/estimates")
		}
		b.StopTimer()
		close(stop)
		<-done
	})
}

// BenchmarkWALReplay measures startup recovery: one multi-segment log of
// binary batch records is built once, then each iteration opens a fresh
// copy of it cold — NewServer replays snapshot + tail into the shards —
// and verifies the recovered report count. Each open seals one more
// (empty) active segment into the directory it runs on, so iterations
// replay a per-iteration clone rather than mutating the shared fixture
// and skewing whichever sub-benchmark runs later. sequential pins
// WithWALReplayWorkers(1); parallel uses the GOMAXPROCS default.
func BenchmarkWALReplay(b *testing.B) {
	const fixtureBatches = 64
	fixtureDir := b.TempDir()
	walOpts := collect.WithWALOptions(wal.Options{Sync: wal.SyncNever, SegmentBytes: 64 << 10})
	srv, err := collect.NewServer(benchProtocol(b),
		collect.WithWAL(fixtureDir), walOpts, collect.WithCompactAfter(1<<40))
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	benchPreload(b, ts, fixtureBatches)
	ts.Close()
	if err := srv.Close(); err != nil {
		b.Fatal(err)
	}
	const want = fixtureBatches * benchBatchSize

	// The fixture files, held in memory so a per-iteration clone is two
	// writes per file instead of a disk-to-disk copy.
	fixture := map[string][]byte{}
	ents, err := os.ReadDir(fixtureDir)
	if err != nil {
		b.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(fixtureDir, ent.Name()))
		if err != nil {
			b.Fatal(err)
		}
		fixture[ent.Name()] = data
	}
	cloneFixture := func(b *testing.B) string {
		b.Helper()
		dir := b.TempDir()
		for name, data := range fixture {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				b.Fatal(err)
			}
		}
		return dir
	}

	replay := func(b *testing.B, workers int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := cloneFixture(b)
			b.StartTimer()
			srv, err := collect.NewServer(benchProtocol(b),
				collect.WithWAL(dir), walOpts, collect.WithCompactAfter(1<<40),
				collect.WithWALReplayWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			if got := srv.Reports(); got != want {
				b.Fatalf("replay recovered %d of %d reports", got, want)
			}
			b.StopTimer()
			if err := srv.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.Run("sequential", func(b *testing.B) { replay(b, 1) })
	b.Run("parallel", func(b *testing.B) { replay(b, 0) })
}
