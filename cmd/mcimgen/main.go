// Command mcimgen generates the evaluation datasets, writes them as CSV
// (label,item per row) and prints the summary statistics the experiments
// depend on: class sizes, top-item heads and the cross-class top-k overlap
// that drives the SYN3/SYN4 and Fig. 8 behaviours.
//
//	mcimgen -ds jd -scale 0.01 -out jd.csv
//	mcimgen -ds syn3 -classes 20 -stats
//	mcimgen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func main() {
	var (
		ds      = flag.String("ds", "", "dataset: syn1|syn2|syn3|syn4|anime|jd|diabetes|heart")
		list    = flag.Bool("list", false, "list datasets and exit")
		scale   = flag.Float64("scale", 0.01, "dataset scale in (0,1]")
		seed    = flag.Uint64("seed", 1, "generator seed")
		classes = flag.Int("classes", 10, "class count (syn3/syn4 only)")
		out     = flag.String("out", "", "write label,item CSV to this file")
		stats   = flag.Bool("stats", true, "print summary statistics")
		k       = flag.Int("k", 20, "head size for the statistics")
	)
	flag.Parse()

	if *list {
		fmt.Println("syn1      variance-analysis Latin square (Fig. 5a)")
		fmt.Println("syn2      class-size sweep (Fig. 5b)")
		fmt.Println("syn3      20k items, normal classes, WITH global head (Fig. 10)")
		fmt.Println("syn4      same but class-disjoint heads (Fig. 10)")
		fmt.Println("anime     2 gender classes × 14k titles (Fig. 7, Table III)")
		fmt.Println("jd        5 age groups × 28k items, extreme skew (Figs. 7-9)")
		fmt.Println("diabetes  8 per-feature binary-label datasets (Fig. 6a)")
		fmt.Println("heart     21 per-feature binary-label datasets (Fig. 6b)")
		return
	}

	var (
		data *core.Dataset
		many []*core.Dataset
		err  error
	)
	switch *ds {
	case "syn1":
		data = dataset.SYN1(*scale)
	case "syn2":
		data = dataset.SYN2(*scale)
	case "syn3":
		data, err = dataset.SynTopK(dataset.DefaultSynTopK(*classes, true), *seed, *scale)
	case "syn4":
		data, err = dataset.SynTopK(dataset.DefaultSynTopK(*classes, false), *seed, *scale)
	case "anime":
		data, err = dataset.Anime(*seed, *scale)
	case "jd":
		data, err = dataset.JD(*seed, *scale)
	case "diabetes":
		many, err = dataset.Diabetes(*seed, *scale)
	case "heart":
		many, err = dataset.Heart(*seed, *scale)
	default:
		fmt.Fprintln(os.Stderr, "mcimgen: unknown dataset; use -list")
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
	if many != nil {
		for _, d := range many {
			describe(d, *k)
		}
		if *out != "" {
			log.Fatal("mcimgen: CSV output supports single-table datasets only")
		}
		return
	}
	if *stats {
		describe(data, *k)
	}
	if *out != "" {
		if err := writeCSV(data, *out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d rows to %s\n", data.N(), *out)
	}
}

// describe prints the dataset statistics the experiments rely on.
func describe(d *core.Dataset, k int) {
	fmt.Printf("== %s: N=%d classes=%d items=%d ==\n", d.Name, d.N(), d.Classes, d.Items)
	counts := d.ClassCounts()
	freq := d.TrueFrequencies()
	tops := make([][]int, d.Classes)
	for c := 0; c < d.Classes; c++ {
		tops[c] = metrics.TopK(freq[c], k)
		head := tops[c]
		if len(head) > 5 {
			head = head[:5]
		}
		fmt.Printf("class %2d: size %8d  top-%d head: %v\n", c, counts[c], k, head)
	}
	// Average pairwise top-k overlap (the SYN3/SYN4 property).
	if d.Classes > 1 {
		pairs, overlap := 0, 0
		for a := 0; a < d.Classes; a++ {
			set := map[int]bool{}
			for _, v := range tops[a] {
				set[v] = true
			}
			for b := a + 1; b < d.Classes; b++ {
				for _, v := range tops[b] {
					if set[v] {
						overlap++
					}
				}
				pairs++
			}
		}
		fmt.Printf("avg pairwise top-%d overlap: %.1f\n", k, float64(overlap)/float64(pairs))
	}
	// Gini-style skew indicator: share of mass in the global top-k.
	item := d.ItemCounts()
	order := make([]int, len(item))
	for i := range order {
		order[i] = item[i]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	head := 0
	for i := 0; i < k && i < len(order); i++ {
		head += order[i]
	}
	fmt.Printf("global top-%d mass share: %.2f%%\n\n", k, 100*float64(head)/float64(d.N()))
}

// writeCSV dumps label,item rows.
func writeCSV(d *core.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("class,item\n"); err != nil {
		return err
	}
	for _, p := range d.Pairs {
		if _, err := w.WriteString(strconv.Itoa(p.Class) + "," + strconv.Itoa(p.Item) + "\n"); err != nil {
			return err
		}
	}
	return w.Flush()
}
