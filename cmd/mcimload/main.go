// Command mcimload is the load generator for the collection server. It has
// two modes:
//
//   - -mode freq (default) drives K concurrent synthetic clients submitting
//     frequency-estimation reports and scores the served estimates against
//     the synthetic ground truth (RMSE, class-size error);
//   - -mode topk creates an interactive top-k mining session and drives the
//     whole population through its rounds — fetch broadcast, perturb
//     locally, post reports, repeat — scoring the mined rankings with
//     NCR/F1 against the ground-truth per-class top-k;
//   - -mode mean drives K concurrent buffered clients submitting numeric
//     (label, value) reports to the server's mean tier over a gaussian
//     per-class population, scoring the served classwise means (MAE) and
//     class-size estimates (relative error) against the ground truth;
//   - -mode query splits the -clients between writers ingesting the
//     population and readers polling GET /estimates for the whole run
//     (-read-ratio sets the split), measuring the read path — queries/sec
//     and query latency percentiles — under concurrent ingest. This is the
//     workload the versioned estimate cache accelerates.
//
// Both modes report sustained throughput (reports/sec) and request latency
// percentiles (p50/p99/max) — the numbers that tell you whether the serving
// path, not the mechanism, is the bottleneck — and with -json emit the run
// summary as one JSON object on stdout so CI can track load-test
// trajectories alongside BENCH_ingest.json.
//
// Self-contained runs (spin up an in-process server on a loopback port):
//
//	mcimload -selfserve -framework ptscp -users 200000 -clients 8 -batch 256 -shards 8
//	mcimload -selfserve -wire binary -users 200000 -clients 8 -batch 512
//	mcimload -selfserve -mode topk -miner pts -k 8 -users 200000 -clients 8
//	mcimload -selfserve -mode mean -mean-framework cpmean -users 200000 -clients 8
//
// Against an external server (mcimcollect -serve; top-k mode needs it
// started with -topk):
//
//	mcimload -url http://localhost:8090 -users 200000 -clients 8
//
// The synthetic population reuses the paper's dataset generators
// (internal/dataset): -dataset syntopk draws the SYN3-style skewed
// multi-class population; -dataset uniform draws uniformly, which maximizes
// wire-format density and so stresses ingestion hardest.
//
// Against a multi-tenant server (mcimcollect -tenants), -tenant/-token
// target one tenant's routes. -tenants N instead fans the freq workload out
// over N tenants named load-0..load-(N-1) — created through the admin API
// (-admin-token) from the -framework/-classes/-items/-eps flags — with
// workers striped across them, reporting per-tenant and aggregate
// throughput; with -selfserve it spins up an in-process multi-tenant
// registry to drive:
//
//	mcimload -selfserve -tenants 4 -users 200000 -clients 8 -wire binary -json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"slices"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mean"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/topk"
	"repro/internal/xrand"
)

// summary is the -json run report: one object per run, with mode-specific
// accuracy fields left null when not applicable.
type summary struct {
	Mode       string  `json:"mode"`
	Framework  string  `json:"framework"`
	Dataset    string  `json:"dataset"`
	Users      int     `json:"users"`
	Clients    int     `json:"clients"`
	Batch      int     `json:"batch"`
	Wire       string  `json:"wire"`
	Requests   int     `json:"requests"`
	ElapsedSec float64 `json:"elapsed_sec"`
	ReportsSec float64 `json:"reports_per_sec"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	MaxMicros  float64 `json:"max_us"`
	// Frequency mode.
	RMSE *float64 `json:"rmse,omitempty"`
	// Frequency and mean modes.
	ClassSizeRelErr *float64 `json:"class_size_rel_err,omitempty"`
	// Mean mode: mean absolute error of the served classwise means.
	MeanMAE *float64 `json:"mean_mae,omitempty"`
	// Top-k mode.
	K      int      `json:"k,omitempty"`
	Rounds int      `json:"rounds,omitempty"`
	NCR    *float64 `json:"ncr,omitempty"`
	F1     *float64 `json:"f1,omitempty"`
	// Tenant fan-out mode (-tenants N).
	Tenants   int                `json:"tenants,omitempty"`
	PerTenant []tenantThroughput `json:"per_tenant,omitempty"`
	// Query mode (-mode query): the reader side of the mixed workload.
	ReadRatio      float64 `json:"read_ratio,omitempty"`
	Queries        int     `json:"queries,omitempty"`
	QueriesSec     float64 `json:"queries_per_sec,omitempty"`
	QueryP50Micros float64 `json:"query_p50_us,omitempty"`
	QueryP99Micros float64 `json:"query_p99_us,omitempty"`

	// Scrape is the -scrape time series: one point per poll of the
	// server's GET /metrics during the run, plus a final point at the end.
	Scrape []scrapePoint `json:"scrape,omitempty"`
}

// tenantThroughput is one tenant's slice of a fan-out run.
type tenantThroughput struct {
	Name       string  `json:"name"`
	Reports    int     `json:"reports"`
	ReportsSec float64 `json:"reports_per_sec"`
}

func main() {
	var (
		mode      = flag.String("mode", "freq", "workload: freq (frequency estimation) | topk (interactive mining session) | mean (numeric mean tier) | query (mixed ingest + estimate polling)")
		url       = flag.String("url", "", "external server URL (mutually exclusive with -selfserve)")
		selfserve = flag.Bool("selfserve", false, "spin up an in-process server to drive")
		framework = flag.String("framework", "ptscp", "frequency-estimation framework (selfserve mode): hec | ptj | pts | ptscp | pts+<oue|sue|olh|grr|adaptive>")
		miner     = flag.String("miner", "pts", "mining framework (topk mode): hec | ptj | pts")
		meanFw    = flag.String("mean-framework", "cpmean", "mean framework (mean mode, selfserve): hecmean | ptsmean | cpmean")
		optimized = flag.Bool("optimized", true, "topk mode: run the paper's full optimization set (false = baseline)")
		k         = flag.Int("k", 8, "per-class ranking size (topk mode)")
		shards    = flag.Int("shards", 0, "server accumulator shards (selfserve mode; 0 = GOMAXPROCS)")
		classes   = flag.Int("classes", 5, "number of classes (selfserve mode)")
		items     = flag.Int("items", 1000, "item domain size (selfserve mode)")
		eps       = flag.Float64("eps", 2, "privacy budget ε")
		split     = flag.Float64("split", 0.5, "label budget fraction ε₁/ε (selfserve mode)")
		dsName    = flag.String("dataset", "syntopk", "synthetic population: syntopk | uniform")
		users     = flag.Int("users", 100_000, "population size (reports to submit)")
		clients   = flag.Int("clients", 8, "concurrent client workers")
		batch     = flag.Int("batch", 256, "reports per batch request (0 = single-report endpoint, freq mode only)")
		ndjson    = flag.Bool("ndjson", false, "submit batches as NDJSON streams instead of JSON arrays (freq mode)")
		wire      = flag.String("wire", "json", "batch wire format: json | binary (freq, topk and mean modes)")
		readRatio = flag.Float64("read-ratio", 0.5, "query mode: fraction of -clients that poll GET /estimates (the rest ingest); 0 < ratio < 1")
		seed      = flag.Uint64("seed", 1, "generation and perturbation seed")
		jsonOut   = flag.Bool("json", false, "emit the run summary as one JSON object on stdout")
		tenantNm  = flag.String("tenant", "", "target one tenant's routes on a multi-tenant server")
		token     = flag.String("token", "", "bearer token for the targeted tenant's data routes")
		tenantsN  = flag.Int("tenants", 0, "fan the freq workload out over N tenants load-0..load-(N-1), created via the admin API (0 = off)")
		adminTok  = flag.String("admin-token", "", "admin bearer token for -tenants fan-out creation")
		scrape    = flag.Duration("scrape", 0, "poll the server's GET /metrics at this interval during the run, recording a time series in the -json summary (0 = off)")
		logLevel  = flag.String("log-level", "info", "structured log level: debug | info | warn | error")
		logFormat = flag.String("log-format", "kv", "structured log line format: kv | json")
	)
	flag.Parse()
	if err := obs.SetupDefault(*logLevel, *logFormat); err != nil {
		log.Fatal(err)
	}
	// Route the stdlib log package through the structured logger so every
	// progress line this tool emits has the same shape.
	log.SetFlags(0)
	log.SetOutput(obs.StdlogWriter(obs.LevelInfo))
	if (*url == "") == !*selfserve {
		fmt.Fprintln(os.Stderr, "mcimload: exactly one of -url or -selfserve is required")
		flag.Usage()
		os.Exit(2)
	}
	if *clients < 1 || *users < 1 {
		log.Fatalf("mcimload: need at least 1 client and 1 user")
	}
	if *mode != "freq" && *mode != "topk" && *mode != "mean" && *mode != "query" {
		log.Fatalf("mcimload: unknown mode %q (want freq, topk, mean or query)", *mode)
	}
	if *mode == "query" {
		if *readRatio <= 0 || *readRatio >= 1 {
			log.Fatalf("mcimload: -read-ratio %v out of range (want 0 < ratio < 1)", *readRatio)
		}
		if *clients < 2 {
			log.Fatalf("mcimload: -mode query needs at least 2 clients (one writer, one reader)")
		}
	}
	if *wire != "json" && *wire != "binary" {
		log.Fatalf("mcimload: unknown wire format %q (want json or binary)", *wire)
	}
	binary := *wire == "binary"
	if binary && *ndjson {
		log.Fatalf("mcimload: -wire binary and -ndjson are mutually exclusive")
	}
	if *tenantsN > 0 {
		if *mode != "freq" {
			log.Fatalf("mcimload: -tenants fan-out only supports -mode freq")
		}
		if *tenantNm != "" {
			log.Fatalf("mcimload: -tenants and -tenant are mutually exclusive")
		}
	}
	if (*mode == "topk" || *mode == "mean" || *mode == "query") && *batch < 1 {
		// These paths have no single-report submission; normalize here so
		// the -json summary records the batch size actually used.
		*batch = 256
	}

	base := *url
	if *selfserve && *tenantsN > 0 {
		// Fan-out drives a multi-tenant registry; the tenants themselves are
		// created below through the same admin API an external run uses.
		reg, err := tenant.New(tenant.Options{AdminToken: *adminTok})
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, reg.Handler()) //nolint:errcheck — dies with the process
		base = "http://" + ln.Addr().String()
		log.Printf("in-process multi-tenant registry on %s", base)
	} else if *selfserve {
		var opts []collect.ServerOption
		var proto *core.Protocol
		if *mode == "mean" {
			// A mean-only server: the frequency tier is not driven, so it is
			// not mounted.
			np, err := core.NewNumericProtocol(*meanFw, *classes, *eps, *split)
			if err != nil {
				log.Fatal(err)
			}
			opts = []collect.ServerOption{collect.WithShards(*shards), collect.WithMean(np)}
		} else {
			var err error
			proto, err = core.NewProtocol(*framework, *classes, *items, *eps, *split)
			if err != nil {
				log.Fatal(err)
			}
			opts = []collect.ServerOption{collect.WithShards(*shards), collect.WithTopKSessions(collect.TopKOptions{})}
		}
		srv, err := collect.NewServer(proto, opts...)
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv.Handler()) //nolint:errcheck — dies with the process
		base = "http://" + ln.Addr().String()
		if *mode == "mean" {
			log.Printf("in-process mean-tier server (%s) on %s (c=%d ε=%v, %d shards)",
				*meanFw, base, *classes, *eps, srv.Shards())
		} else {
			log.Printf("in-process %s server on %s (c=%d d=%d ε=%v, %d shards, topk sessions on)",
				proto.Name(), base, *classes, *items, *eps, srv.Shards())
		}
	}

	// Tenant targeting is a client-side transform: prefix the base with the
	// tenant's routes and carry its bearer token on every request.
	hc := collect.BearerClient(nil, *token)
	if *tenantNm != "" {
		base = collect.TenantBaseURL(base, *tenantNm)
	}

	sum := summary{Mode: *mode, Clients: *clients, Batch: *batch, Wire: *wire}
	var scr *scraper
	if *scrape > 0 {
		scr = startScraper(base, hc, *scrape)
	}
	if *tenantsN > 0 {
		if binary && *batch < 1 {
			log.Fatalf("mcimload: -wire binary needs batched submission (-batch >= 1)")
		}
		spec := tenant.Spec{
			Freq:   &tenant.FreqSpec{Protocol: *framework, Classes: *classes, Items: *items, Epsilon: *eps, Split: *split},
			Shards: *shards,
		}
		sum.Framework = *framework
		runFanout(base, *adminTok, *tenantsN, spec, *dsName, *users, &sum, *batch, *ndjson, binary, *clients, *seed, *jsonOut)
	} else if *mode == "mean" {
		// The population must match the server's mean domain, generated from
		// the fetched /mean/config (which also validates the server is up).
		probe, err := collect.NewMeanClient(base, hc, *seed)
		if err != nil {
			log.Fatal(err)
		}
		mcfg := probe.Config()
		data := buildMeanDataset(mcfg.Classes, *users, *seed)
		sum.Framework = mcfg.Protocol
		sum.Dataset = data.Name
		sum.Users = data.N()
		runMean(base, hc, probe, data, &sum, *clients, *batch, *ndjson, binary, *seed, *jsonOut)
	} else {
		// The population must match the server's domain, so it is generated
		// from the fetched config (which also validates the server is up).
		probe, err := collect.NewClient(base, hc, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg := probe.Config()
		data, err := buildDataset(*dsName, cfg.Classes, cfg.Items, *users, *seed)
		if err != nil {
			log.Fatal(err)
		}
		r := xrand.New(*seed + 1)
		data = data.Shuffled(r)
		sum.Dataset = data.Name
		sum.Users = data.N()
		switch *mode {
		case "freq":
			if binary && *batch < 1 {
				log.Fatalf("mcimload: -wire binary needs batched submission (-batch >= 1)")
			}
			sum.Framework = cfg.Protocol
			runFreq(base, hc, probe, data, &sum, *batch, *ndjson, binary, *clients, *seed, *jsonOut)
		case "topk":
			sum.Framework = *miner
			sum.K = *k
			runTopK(base, hc, data, &sum, *miner, *optimized, *k, *eps, *clients, *batch, binary, *seed, *jsonOut)
		case "query":
			sum.Framework = cfg.Protocol
			runQuery(base, hc, probe, data, &sum, *readRatio, *batch, *ndjson, binary, *clients, *seed, *jsonOut)
		}
	}
	if scr != nil {
		sum.Scrape = scr.stop()
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
	}
	// Operational snapshot: on WAL-backed servers this also shows the
	// durability cost of the run (segments written, bytes not yet folded
	// into a snapshot). In fan-out mode the per-tenant verification already
	// fetched each tenant's stats, so skip the (tenant-less) base here.
	if *tenantsN > 0 {
		return
	}
	if stats, err := fetchStats(base, hc); err == nil {
		if stats.Protocol != "" {
			log.Printf("server: %d reports over %d shards (%s)", stats.Reports, stats.Shards, stats.Protocol)
		}
		if stats.WAL != nil {
			log.Printf("server wal: %d segments, %d bytes since last compaction (last snapshot %q)",
				stats.WAL.Segments, stats.WAL.BytesSinceCompaction, stats.WAL.LastSnapshot)
		}
		if stats.TopK != nil {
			log.Printf("server topk: %d sessions (%d open)", stats.TopK.Sessions, stats.TopK.Open)
		}
		if stats.Mean != nil {
			log.Printf("server mean tier: %d reports (%s)", stats.Mean.Reports, stats.Mean.Protocol)
			if stats.Mean.WAL != nil {
				log.Printf("server mean wal: %d segments, %d bytes since last compaction",
					stats.Mean.WAL.Segments, stats.Mean.WAL.BytesSinceCompaction)
			}
		}
	}
}

// fetchStats reads /stats directly, working against any server shape
// (including mean-only servers that mount no frequency /config).
func fetchStats(base string, hc *http.Client) (*collect.WireStats, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats status %s", resp.Status)
	}
	var st collect.WireStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// scrapePoint is one poll of the target's GET /metrics: seconds since the
// scraper started and every mcim_ sample at that instant (histogram
// per-bucket lines skipped for compactness; _sum and _count carried).
type scrapePoint struct {
	ElapsedSec float64            `json:"elapsed_sec"`
	Samples    map[string]float64 `json:"samples"`
}

// scraper polls GET /metrics on a fixed interval for the duration of a run.
type scraper struct {
	done   chan struct{}
	points chan []scrapePoint
}

// startScraper begins polling base+"/metrics" every interval. Scrape
// failures are logged and skipped — a load run must not die because a
// scrape raced server startup.
func startScraper(base string, hc *http.Client, every time.Duration) *scraper {
	if hc == nil {
		hc = http.DefaultClient
	}
	s := &scraper{done: make(chan struct{}), points: make(chan []scrapePoint, 1)}
	go func() {
		var pts []scrapePoint
		start := time.Now()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if p, err := scrapeOnce(base, hc, start); err == nil {
					pts = append(pts, p)
				} else {
					log.Printf("scrape: %v", err)
				}
			case <-s.done:
				// A final point so the series always covers the run's end
				// state, even when the run finished inside one interval.
				if p, err := scrapeOnce(base, hc, start); err == nil {
					pts = append(pts, p)
				} else {
					log.Printf("scrape: %v", err)
				}
				s.points <- pts
				return
			}
		}
	}()
	return s
}

// stop takes the final scrape and returns the collected series.
func (s *scraper) stop() []scrapePoint {
	close(s.done)
	return <-s.points
}

func scrapeOnce(base string, hc *http.Client, start time.Time) (scrapePoint, error) {
	resp, err := hc.Get(base + "/metrics")
	if err != nil {
		return scrapePoint{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return scrapePoint{}, fmt.Errorf("metrics status %s", resp.Status)
	}
	expo, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return scrapePoint{}, err
	}
	samples := make(map[string]float64)
	for key, v := range expo.Samples() {
		if !strings.HasPrefix(key, "mcim_") || strings.Contains(key, "_bucket") {
			continue
		}
		samples[key] = v
	}
	return scrapePoint{ElapsedSec: time.Since(start).Seconds(), Samples: samples}, nil
}

// out prints human-readable results unless the run is in -json mode (where
// stdout must stay one JSON object; progress goes to stderr via log).
func out(jsonOut bool, format string, args ...any) {
	if jsonOut {
		log.Printf(format, args...)
		return
	}
	fmt.Printf(format+"\n", args...)
}

// runFreq drives the frequency-estimation ingestion workload.
func runFreq(base string, hc *http.Client, probe *collect.Client, data *core.Dataset, sum *summary,
	batch int, ndjson, binary bool, clients int, seed uint64, jsonOut bool) {
	// Baseline the server's report count: against a long-running server it
	// may already hold reports from earlier rounds.
	est0, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	baseline := est0.Reports
	log.Printf("population %s: %d users over %d classes × %d items",
		data.Name, data.N(), data.Classes, data.Items)

	// Partition the population over K workers and drive them concurrently.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		requests  int
		firstErr  error
	)
	perWorker := (data.N() + clients - 1) / clients
	start := time.Now()
	for w := 0; w < clients; w++ {
		lo := w * perWorker
		hi := min(lo+perWorker, data.N())
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, pairs []core.Pair) {
			defer wg.Done()
			lats, n, err := drive(base, hc, pairs, batch, ndjson, binary, seed+uint64(w)*7919)
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lats...)
			requests += n
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("worker %d: %w", w, err)
			}
		}(w, data.Pairs[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		log.Fatal(firstErr)
	}
	fillTiming(sum, latencies, requests, elapsed, data.N())
	out(jsonOut, "drove %d clients, %d requests (batch=%d, wire=%s, ndjson=%v) in %v",
		clients, requests, batch, sum.Wire, ndjson, elapsed.Round(time.Millisecond))
	out(jsonOut, "throughput: %.0f reports/sec", sum.ReportsSec)
	p50, p99, maxLat := percentiles(latencies)
	out(jsonOut, "request latency: p50 %v  p99 %v  max %v",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), maxLat.Round(time.Microsecond))

	// Accuracy against ground truth: the served estimates are unbiased, so
	// RMSE here is mechanism noise, not ingestion error — a sanity check
	// that speed did not cost correctness.
	est, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	if got := est.Reports - baseline; got != data.N() {
		log.Fatalf("server ingested %d of %d reports this run", got, data.N())
	}
	if baseline > 0 {
		log.Printf("note: server held %d reports before this run; accuracy below reflects all %d", baseline, est.Reports)
	}
	truth := data.TrueFrequencies()
	classCounts := data.ClassCounts()
	relErrSum, relErrN := 0.0, 0
	for c, want := range classCounts {
		if want > 0 {
			relErrSum += math.Abs(est.ClassSizes[c]-float64(want)) / float64(want)
			relErrN++
		}
	}
	rmse := metrics.RMSE(est.Frequencies, truth)
	relErr := relErrSum / float64(relErrN)
	sum.RMSE, sum.ClassSizeRelErr = &rmse, &relErr
	out(jsonOut, "accuracy: frequency RMSE %.2f over %d×%d cells, class-size mean relative error %.2f%%",
		rmse, data.Classes, data.Items, 100*relErr)
}

// runQuery drives the mixed read/write workload: ceil(clients·readRatio)
// reader workers poll GET /estimates as fast as the server answers while
// the remaining writers ingest the population through the batch endpoint.
// Readers run until the last writer finishes, so every query lands under
// concurrent ingest — the regime the versioned estimate cache is built
// for. Ingest is verified and scored exactly like -mode freq; the summary
// additionally reports queries/sec and query latency percentiles.
func runQuery(base string, hc *http.Client, probe *collect.Client, data *core.Dataset, sum *summary,
	readRatio float64, batch int, ndjson, binary bool, clients int, seed uint64, jsonOut bool) {
	if hc == nil {
		hc = http.DefaultClient
	}
	readers := int(math.Ceil(float64(clients) * readRatio))
	if readers >= clients {
		readers = clients - 1
	}
	writers := clients - readers
	est0, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	baseline := est0.Reports
	log.Printf("population %s: %d users over %d classes × %d items; %d writers + %d readers",
		data.Name, data.N(), data.Classes, data.Items, writers, readers)

	var (
		writeWG, readWG sync.WaitGroup
		mu              sync.Mutex
		latencies       []time.Duration
		requests        int
		firstErr        error
		qlats           []time.Duration
		queries         int
		qErr            error
	)
	stop := make(chan struct{})
	start := time.Now()
	for w := 0; w < readers; w++ {
		readWG.Add(1)
		go func(w int) {
			defer readWG.Done()
			var lats []time.Duration
			var err error
			for err == nil {
				select {
				case <-stop:
					err = errStopped
				default:
					t0 := time.Now()
					resp, gerr := hc.Get(base + "/estimates")
					if gerr != nil {
						err = gerr
						break
					}
					_, cerr := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch {
					case cerr != nil:
						err = cerr
					case resp.StatusCode != http.StatusOK:
						err = fmt.Errorf("estimates status %s", resp.Status)
					default:
						lats = append(lats, time.Since(t0))
					}
				}
			}
			mu.Lock()
			defer mu.Unlock()
			qlats = append(qlats, lats...)
			queries += len(lats)
			if err != errStopped && qErr == nil {
				qErr = fmt.Errorf("reader %d: %w", w, err)
			}
		}(w)
	}
	perWorker := (data.N() + writers - 1) / writers
	for w := 0; w < writers; w++ {
		lo := w * perWorker
		hi := min(lo+perWorker, data.N())
		if lo >= hi {
			break
		}
		writeWG.Add(1)
		go func(w int, pairs []core.Pair) {
			defer writeWG.Done()
			lats, n, err := drive(base, hc, pairs, batch, ndjson, binary, seed+uint64(w)*7919)
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lats...)
			requests += n
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("writer %d: %w", w, err)
			}
		}(w, data.Pairs[lo:hi])
	}
	writeWG.Wait()
	elapsed := time.Since(start)
	close(stop)
	readWG.Wait()
	if firstErr != nil {
		log.Fatal(firstErr)
	}
	if qErr != nil {
		log.Fatal(qErr)
	}
	fillTiming(sum, latencies, requests, elapsed, data.N())
	sum.ReadRatio = readRatio
	sum.Queries = queries
	sum.QueriesSec = float64(queries) / elapsed.Seconds()
	qp50, qp99, qmax := percentiles(qlats)
	sum.QueryP50Micros = float64(qp50) / float64(time.Microsecond)
	sum.QueryP99Micros = float64(qp99) / float64(time.Microsecond)
	out(jsonOut, "drove %d writers + %d readers, %d ingest requests (batch=%d, wire=%s) in %v",
		writers, readers, requests, batch, sum.Wire, elapsed.Round(time.Millisecond))
	out(jsonOut, "ingest throughput: %.0f reports/sec", sum.ReportsSec)
	p50, p99, maxLat := percentiles(latencies)
	out(jsonOut, "ingest latency: p50 %v  p99 %v  max %v",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), maxLat.Round(time.Microsecond))
	out(jsonOut, "query throughput: %d queries, %.0f queries/sec", queries, sum.QueriesSec)
	out(jsonOut, "query latency: p50 %v  p99 %v  max %v",
		qp50.Round(time.Microsecond), qp99.Round(time.Microsecond), qmax.Round(time.Microsecond))

	est, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	if got := est.Reports - baseline; got != data.N() {
		log.Fatalf("server ingested %d of %d reports this run", got, data.N())
	}
}

// errStopped is the sentinel a query-mode reader exits on when the writers
// finish; it is never reported.
var errStopped = fmt.Errorf("mcimload: run finished")

// runFanout drives the frequency workload over n tenants at once: tenants
// load-0..load-(n-1) are created (or reused) through the admin API from the
// spec template, workers are striped across them, and the summary reports
// both aggregate and per-tenant throughput. Accuracy is not scored — the
// population is split across independent aggregates; this mode measures
// whether per-tenant isolation costs ingestion throughput.
func runFanout(base, adminTok string, n int, spec tenant.Spec, dsName string, users int, sum *summary,
	batch int, ndjson, binary bool, clients int, seed uint64, jsonOut bool) {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("load-%d", i)
		if err := createTenant(base, adminTok, names[i], spec); err != nil {
			log.Fatal(err)
		}
	}
	f := spec.Freq
	data, err := buildDataset(dsName, f.Classes, f.Items, users, seed)
	if err != nil {
		log.Fatal(err)
	}
	data = data.Shuffled(xrand.New(seed + 1))
	sum.Dataset = data.Name
	sum.Users = data.N()
	sum.Tenants = n
	// Baseline each tenant so the post-run verification tolerates reused
	// tenants on a long-running server.
	baseline := make(map[string]int, n)
	for _, name := range names {
		st, err := fetchStats(collect.TenantBaseURL(base, name), nil)
		if err != nil {
			log.Fatal(err)
		}
		baseline[name] = st.Reports
	}
	log.Printf("population %s: %d users over %d classes × %d items, fanned over %d tenants",
		data.Name, data.N(), data.Classes, data.Items, n)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		requests  int
		firstErr  error
	)
	perTenant := make(map[string]int, n)
	perWorker := (data.N() + clients - 1) / clients
	start := time.Now()
	for w := 0; w < clients; w++ {
		lo := w * perWorker
		hi := min(lo+perWorker, data.N())
		if lo >= hi {
			break
		}
		name := names[w%n]
		perTenant[name] += hi - lo
		wg.Add(1)
		go func(w int, name string, pairs []core.Pair) {
			defer wg.Done()
			lats, nreq, err := drive(base, nil, pairs, batch, ndjson, binary, seed+uint64(w)*7919,
				collect.WithTenant(name, ""))
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lats...)
			requests += nreq
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("worker %d (tenant %s): %w", w, name, err)
			}
		}(w, name, data.Pairs[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		log.Fatal(firstErr)
	}
	fillTiming(sum, latencies, requests, elapsed, data.N())
	out(jsonOut, "drove %d clients over %d tenants, %d requests (batch=%d, wire=%s) in %v",
		clients, n, requests, batch, sum.Wire, elapsed.Round(time.Millisecond))
	out(jsonOut, "aggregate throughput: %.0f reports/sec", sum.ReportsSec)
	p50, p99, maxLat := percentiles(latencies)
	out(jsonOut, "request latency: p50 %v  p99 %v  max %v",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), maxLat.Round(time.Microsecond))
	// Verify isolation did not leak reports: each tenant must hold exactly
	// the slice driven at it.
	for _, name := range names {
		st, err := fetchStats(collect.TenantBaseURL(base, name), nil)
		if err != nil {
			log.Fatal(err)
		}
		if got := st.Reports - baseline[name]; got != perTenant[name] {
			log.Fatalf("tenant %s ingested %d of %d reports this run", name, got, perTenant[name])
		}
		sum.PerTenant = append(sum.PerTenant, tenantThroughput{
			Name:       name,
			Reports:    perTenant[name],
			ReportsSec: float64(perTenant[name]) / elapsed.Seconds(),
		})
		out(jsonOut, "tenant %s: %d reports, %.0f reports/sec", name, perTenant[name],
			float64(perTenant[name])/elapsed.Seconds())
	}
}

// createTenant registers one tenant through the admin API, treating "already
// exists" as success so fan-out runs are repeatable against a durable
// server.
func createTenant(base, adminTok, name string, spec tenant.Spec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/admin/tenants/"+name, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if adminTok != "" {
		req.Header.Set("Authorization", "Bearer "+adminTok)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("create tenant %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusConflict {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("create tenant %s: status %s: %s", name, resp.Status, bytes.TrimSpace(msg))
}

// runTopK creates a mining session and drives the population through its
// rounds with K concurrent workers, then scores the mined rankings. With
// -wire binary each batch ships as one CRC-sealed 'T' session frame; the
// run refuses up front when the server does not advertise the binary lane,
// and the -json summary's Wire field records the format actually used.
func runTopK(base string, hc *http.Client, data *core.Dataset, sum *summary,
	miner string, optimized bool, k int, eps float64, clients, batch int, binary bool, seed uint64, jsonOut bool) {
	opt := topk.Baseline()
	if optimized {
		opt = topk.Optimized()
	}
	sessionSeed := xrand.New(seed + 2).Uint64()
	ts, err := collect.NewTopKSession(base, hc, topk.SessionParams{
		Framework: miner,
		Classes:   data.Classes,
		Items:     data.Items,
		K:         k,
		Eps:       eps,
		Users:     data.N(),
		Seed:      sessionSeed,
		Opt:       opt,
	})
	if err != nil {
		log.Fatal(err)
	}
	info := ts.Info()
	sum.Rounds = info.Rounds
	if binary && !slices.Contains(info.Wire, "binary") {
		log.Fatalf("mcimload: -wire binary requested but session %s advertises only %v", info.ID, info.Wire)
	}
	sum.Wire = "json"
	if binary {
		sum.Wire = "binary"
	}
	log.Printf("session %s: %s over %d×%d, k=%d, %d rounds, %d users, wire=%s",
		info.ID, info.Params.Framework, data.Classes, data.Items, k, info.Rounds, data.N(), sum.Wire)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		requests  int
	)
	user := 0
	start := time.Now()
	for {
		rd, err := ts.Round()
		if err != nil {
			log.Fatal(err)
		}
		if rd.Done {
			break
		}
		// Every worker shares the round's encoder (it is concurrency-safe
		// with per-user rands) and takes an interleaved slice of this
		// round's user group.
		enc, err := topk.NewRoundEncoder(rd.Config)
		if err != nil {
			log.Fatal(err)
		}
		todo := rd.Config.Quota - rd.Received
		reps := make([]topk.RoundReport, todo)
		var encWG sync.WaitGroup
		per := (todo + clients - 1) / clients
		for w := 0; w < clients; w++ {
			lo := w * per
			hi := min(lo+per, todo)
			if lo >= hi {
				break
			}
			encWG.Add(1)
			go func(lo, hi int) {
				defer encWG.Done()
				for i := lo; i < hi; i++ {
					u := user + i
					rep, err := enc.Encode(data.Pairs[u], topk.UserRand(sessionSeed, u))
					if err != nil {
						log.Fatal(err)
					}
					reps[i] = rep
				}
			}(lo, hi)
		}
		encWG.Wait()
		user += todo
		// Post the round's batches concurrently; the server seals the
		// round when the last batch lands.
		var postWG sync.WaitGroup
		var postErr error
		sem := make(chan struct{}, clients)
		for lo := 0; lo < len(reps); lo += batch {
			hi := min(lo+batch, len(reps))
			postWG.Add(1)
			sem <- struct{}{}
			go func(chunk []topk.RoundReport) {
				defer postWG.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				var ack *collect.WireTopKAck
				var err error
				if binary {
					ack, err = ts.PostReportsBinary(rd.Config, chunk)
				} else {
					ack, err = ts.PostReports(chunk)
				}
				lat := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				latencies = append(latencies, lat)
				requests++
				if err != nil && postErr == nil {
					postErr = err
				} else if err == nil && ack.Rejected > 0 && postErr == nil {
					postErr = fmt.Errorf("round %d rejected %d reports: %v", rd.Config.Round, ack.Rejected, ack.Errors)
				}
			}(reps[lo:hi])
		}
		postWG.Wait()
		if postErr != nil {
			log.Fatal(postErr)
		}
	}
	elapsed := time.Since(start)
	res, err := ts.Result()
	if err != nil {
		log.Fatal(err)
	}
	fillTiming(sum, latencies, requests, elapsed, user)
	out(jsonOut, "drove %d clients through %d rounds, %d requests in %v",
		clients, sum.Rounds, requests, elapsed.Round(time.Millisecond))
	out(jsonOut, "throughput: %.0f reports/sec", sum.ReportsSec)
	p50, p99, maxLat := percentiles(latencies)
	out(jsonOut, "request latency: p50 %v  p99 %v  max %v",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), maxLat.Round(time.Microsecond))

	// Score the mined rankings against the exact per-class top-k.
	truth := data.TrueFrequencies()
	ncrSum, f1Sum := 0.0, 0.0
	for c := 0; c < data.Classes; c++ {
		want := metrics.TopK(truth[c], k)
		ncrSum += metrics.NCR(res.PerClass[c], want)
		f1Sum += metrics.F1(res.PerClass[c], want)
	}
	ncr := ncrSum / float64(data.Classes)
	f1 := f1Sum / float64(data.Classes)
	sum.NCR, sum.F1 = &ncr, &f1
	out(jsonOut, "quality: mean NCR %.3f, mean F1 %.3f over %d classes (k=%d)", ncr, f1, data.Classes, k)
}

// buildMeanDataset generates the gaussian per-class population for the
// mean workload: class c's values are normal around a center spread across
// [−0.8, 0.8] (σ = 0.2, truncated to the value domain), with skewed class
// sizes so the class-size estimators have something non-trivial to
// recover.
func buildMeanDataset(classes, users int, seed uint64) *mean.Dataset {
	r := xrand.New(seed)
	centers := make([]float64, classes)
	for c := range centers {
		if classes > 1 {
			centers[c] = -0.8 + 1.6*float64(c)/float64(classes-1)
		}
	}
	// Class weights decay harmonically: class c has weight 1/(c+1).
	weights := make([]float64, classes)
	total := 0.0
	for c := range weights {
		weights[c] = 1 / float64(c+1)
		total += weights[c]
	}
	d := &mean.Dataset{Classes: classes, Name: "GAUSS"}
	for i := 0; i < users; i++ {
		u, c := r.Float64()*total, 0
		for u > weights[c] && c < classes-1 {
			u -= weights[c]
			c++
		}
		x := centers[c] + 0.2*r.NormFloat64()
		if x > 1 {
			x = 1
		}
		if x < -1 {
			x = -1
		}
		d.Values = append(d.Values, mean.Value{Class: c, X: x})
	}
	return d
}

// runMean drives the numeric mean-tier ingestion workload: K concurrent
// buffered clients, each perturbing its slice of the population locally
// (the canonical user index rides along, so HEC-Mean's partition is
// consistent across workers) and shipping batch requests.
func runMean(base string, hc *http.Client, probe *collect.MeanClient, data *mean.Dataset, sum *summary,
	clients, batch int, ndjson, binary bool, seed uint64, jsonOut bool) {
	est0, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	baseline := est0.Reports
	log.Printf("population %s: %d users over %d classes, values in [-1,1]",
		data.Name, data.N(), data.Classes)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		requests  int
		firstErr  error
	)
	perWorker := (data.N() + clients - 1) / clients
	start := time.Now()
	for w := 0; w < clients; w++ {
		lo := w * perWorker
		hi := min(lo+perWorker, data.N())
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, firstUser int, values []mean.Value) {
			defer wg.Done()
			client, err := collect.NewMeanClient(base, hc, seed+uint64(w)*7919,
				collect.WithMeanBatchSize(batch), collect.WithMeanNDJSON(ndjson), collect.WithMeanBinary(binary))
			var lats []time.Duration
			n := 0
			if err == nil {
				// Buffered submission: reports accumulate locally and ship as
				// one batch request per `batch` reports. A Buffer call that
				// shrank the buffer performed a flush — that is the request
				// whose latency we record.
				for i, v := range values {
					before := client.Pending()
					t0 := time.Now()
					if err = client.Buffer(firstUser+i, v); err != nil {
						break
					}
					if client.Pending() <= before {
						lats = append(lats, time.Since(t0))
						n++
					}
				}
				if err == nil && client.Pending() > 0 {
					t0 := time.Now()
					if err = client.Flush(); err == nil {
						lats = append(lats, time.Since(t0))
						n++
					}
				}
			}
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lats...)
			requests += n
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("worker %d: %w", w, err)
			}
		}(w, lo, data.Values[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		log.Fatal(firstErr)
	}
	fillTiming(sum, latencies, requests, elapsed, data.N())
	out(jsonOut, "drove %d clients, %d requests (batch=%d, wire=%s, ndjson=%v) in %v",
		clients, requests, batch, sum.Wire, ndjson, elapsed.Round(time.Millisecond))
	out(jsonOut, "throughput: %.0f reports/sec", sum.ReportsSec)
	p50, p99, maxLat := percentiles(latencies)
	out(jsonOut, "request latency: p50 %v  p99 %v  max %v",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), maxLat.Round(time.Microsecond))

	est, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	if got := est.Reports - baseline; got != data.N() {
		log.Fatalf("server ingested %d of %d reports this run", got, data.N())
	}
	if baseline > 0 {
		log.Printf("note: server held %d reports before this run; accuracy below reflects all %d", baseline, est.Reports)
	}
	truth, sizes := data.TrueMeans()
	maeSum, relErrSum, relErrN := 0.0, 0.0, 0
	for c := range truth {
		maeSum += math.Abs(est.Means[c] - truth[c])
		if sizes[c] > 0 {
			relErrSum += math.Abs(est.ClassSizes[c]-float64(sizes[c])) / float64(sizes[c])
			relErrN++
		}
	}
	mae := maeSum / float64(data.Classes)
	relErr := relErrSum / float64(relErrN)
	sum.MeanMAE, sum.ClassSizeRelErr = &mae, &relErr
	out(jsonOut, "accuracy: per-class mean MAE %.4f, class-size mean relative error %.2f%% over %d classes",
		mae, 100*relErr, data.Classes)
}

// fillTiming populates the summary's shared throughput/latency fields.
func fillTiming(sum *summary, lats []time.Duration, requests int, elapsed time.Duration, reports int) {
	p50, p99, maxLat := percentiles(lats)
	sum.Requests = requests
	sum.ElapsedSec = elapsed.Seconds()
	sum.ReportsSec = float64(reports) / elapsed.Seconds()
	sum.P50Micros = float64(p50) / float64(time.Microsecond)
	sum.P99Micros = float64(p99) / float64(time.Microsecond)
	sum.MaxMicros = float64(maxLat) / float64(time.Microsecond)
}

// drive submits pairs from one worker, returning per-request latencies and
// the request count. Extra client options (tenant targeting) append to the
// wire-format ones.
func drive(base string, hc *http.Client, pairs []core.Pair, batch int, ndjson, binary bool, seed uint64, opts ...collect.ClientOption) ([]time.Duration, int, error) {
	copts := append([]collect.ClientOption{collect.WithNDJSON(ndjson), collect.WithBinary(binary)}, opts...)
	client, err := collect.NewClient(base, hc, seed, copts...)
	if err != nil {
		return nil, 0, err
	}
	var lats []time.Duration
	if batch < 1 {
		// Seed-style single-report submission, one request per report.
		for _, p := range pairs {
			t0 := time.Now()
			if err := client.Submit(p); err != nil {
				return lats, len(lats), err
			}
			lats = append(lats, time.Since(t0))
		}
		return lats, len(lats), nil
	}
	for lo := 0; lo < len(pairs); lo += batch {
		hi := min(lo+batch, len(pairs))
		t0 := time.Now()
		ack, err := client.SubmitBatch(pairs[lo:hi])
		if err != nil {
			return lats, len(lats), err
		}
		lats = append(lats, time.Since(t0))
		if ack.Rejected > 0 {
			return lats, len(lats), fmt.Errorf("server rejected %d reports: %v", ack.Rejected, ack.Errors)
		}
	}
	return lats, len(lats), nil
}

// buildDataset generates the synthetic population over exactly the server's
// (classes, items) domain.
func buildDataset(name string, classes, items, users int, seed uint64) (*core.Dataset, error) {
	switch name {
	case "syntopk":
		cfg := dataset.SynTopKConfig{
			Classes:  classes,
			Items:    items,
			Users:    users,
			HeadSize: 20,
			Global:   true,
		}
		// Shrink the head window for small domains so the generator's
		// d ≥ head·(c+1) precondition holds.
		if maxHead := items / (classes + 1); cfg.HeadSize > maxHead {
			cfg.HeadSize = maxHead
		}
		if cfg.HeadSize >= 1 && classes >= 2 {
			return dataset.SynTopK(cfg, seed, 1)
		}
		fallthrough // degenerate domain: uniform is the only sensible population
	case "uniform":
		r := xrand.New(seed)
		d := &core.Dataset{Pairs: make([]core.Pair, users), Classes: classes, Items: items, Name: "UNIFORM"}
		for i := range d.Pairs {
			d.Pairs[i] = core.Pair{Class: r.Intn(classes), Item: r.Intn(items)}
		}
		return d, nil
	default:
		return nil, fmt.Errorf("mcimload: unknown dataset %q (want syntopk or uniform)", name)
	}
}

// percentiles returns p50, p99 and max of the observed latencies.
func percentiles(lats []time.Duration) (p50, p99, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return at(0.50), at(0.99), lats[len(lats)-1]
}
