// Command mcimload is the load generator for the collection server: it
// drives K concurrent synthetic clients against an aggregation server and
// reports sustained throughput (reports/sec), request latency percentiles
// (p50/p99/max) and estimate accuracy against the synthetic ground truth —
// the numbers that tell you whether the serving path, not the mechanism, is
// the bottleneck.
//
// Self-contained run (spins up an in-process server on a loopback port;
// -framework picks which of hec/ptj/pts/ptscp it aggregates):
//
//	mcimload -selfserve -framework ptscp -users 200000 -clients 8 -batch 256 -shards 8
//
// Against an external server (mcimcollect -serve), where the framework is
// negotiated from the server's /config:
//
//	mcimload -url http://localhost:8090 -users 200000 -clients 8
//
// The synthetic population reuses the paper's dataset generators
// (internal/dataset): -dataset syntopk draws the SYN3-style skewed
// multi-class population; -dataset uniform draws uniformly, which maximizes
// wire-format density and so stresses ingestion hardest.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/xrand"
)

func main() {
	var (
		url       = flag.String("url", "", "external server URL (mutually exclusive with -selfserve)")
		selfserve = flag.Bool("selfserve", false, "spin up an in-process server to drive")
		framework = flag.String("framework", "ptscp", "frequency-estimation framework (selfserve mode): hec | ptj | pts | ptscp | pts+<oue|sue|olh|grr|adaptive>")
		shards    = flag.Int("shards", 0, "server accumulator shards (selfserve mode; 0 = GOMAXPROCS)")
		classes   = flag.Int("classes", 5, "number of classes (selfserve mode)")
		items     = flag.Int("items", 1000, "item domain size (selfserve mode)")
		eps       = flag.Float64("eps", 2, "privacy budget ε (selfserve mode)")
		split     = flag.Float64("split", 0.5, "label budget fraction ε₁/ε (selfserve mode)")
		dsName    = flag.String("dataset", "syntopk", "synthetic population: syntopk | uniform")
		users     = flag.Int("users", 100_000, "population size (reports to submit)")
		clients   = flag.Int("clients", 8, "concurrent client workers")
		batch     = flag.Int("batch", 256, "reports per batch request (0 = single-report endpoint)")
		ndjson    = flag.Bool("ndjson", false, "submit batches as NDJSON streams instead of JSON arrays")
		seed      = flag.Uint64("seed", 1, "generation and perturbation seed")
	)
	flag.Parse()
	if (*url == "") == !*selfserve {
		fmt.Fprintln(os.Stderr, "mcimload: exactly one of -url or -selfserve is required")
		flag.Usage()
		os.Exit(2)
	}
	if *clients < 1 || *users < 1 {
		log.Fatalf("mcimload: need at least 1 client and 1 user")
	}

	base := *url
	if *selfserve {
		proto, err := core.NewProtocol(*framework, *classes, *items, *eps, *split)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := collect.NewServer(proto, collect.WithShards(*shards))
		if err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, srv.Handler()) //nolint:errcheck — dies with the process
		base = "http://" + ln.Addr().String()
		log.Printf("in-process %s server on %s (c=%d d=%d ε=%v, %d shards)",
			proto.Name(), base, *classes, *items, *eps, srv.Shards())
	}

	// The population must match the server's domain, so it is generated
	// from the fetched config (which also validates the server is up).
	probe, err := collect.NewClient(base, nil, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg := probe.Config()

	// Baseline the server's report count: against a long-running server it
	// may already hold reports from earlier rounds.
	est0, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	baseline := est0.Reports

	data, err := buildDataset(*dsName, cfg.Classes, cfg.Items, *users, *seed)
	if err != nil {
		log.Fatal(err)
	}
	r := xrand.New(*seed + 1)
	data = data.Shuffled(r)
	log.Printf("population %s: %d users over %d classes × %d items (%s wire)",
		data.Name, data.N(), data.Classes, data.Items, cfg.Protocol)

	// Partition the population over K workers and drive them concurrently.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		requests  int
		firstErr  error
	)
	perWorker := (data.N() + *clients - 1) / *clients
	start := time.Now()
	for w := 0; w < *clients; w++ {
		lo := w * perWorker
		hi := min(lo+perWorker, data.N())
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, pairs []core.Pair) {
			defer wg.Done()
			lats, n, err := drive(base, pairs, *batch, *ndjson, *seed+uint64(w)*7919)
			mu.Lock()
			defer mu.Unlock()
			latencies = append(latencies, lats...)
			requests += n
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("worker %d: %w", w, err)
			}
		}(w, data.Pairs[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		log.Fatal(firstErr)
	}

	fmt.Printf("drove %d clients, %d requests (batch=%d, ndjson=%v) in %v\n",
		*clients, requests, *batch, *ndjson, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f reports/sec\n", float64(data.N())/elapsed.Seconds())
	p50, p99, max := percentiles(latencies)
	fmt.Printf("request latency: p50 %v  p99 %v  max %v\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), max.Round(time.Microsecond))

	// Accuracy against ground truth: the served estimates are unbiased, so
	// RMSE here is mechanism noise, not ingestion error — a sanity check
	// that speed did not cost correctness.
	est, err := probe.Estimates()
	if err != nil {
		log.Fatal(err)
	}
	if got := est.Reports - baseline; got != data.N() {
		log.Fatalf("server ingested %d of %d reports this run", got, data.N())
	}
	if baseline > 0 {
		fmt.Printf("note: server held %d reports before this run; accuracy below reflects all %d\n", baseline, est.Reports)
	}
	truth := data.TrueFrequencies()
	classCounts := data.ClassCounts()
	relErrSum, relErrN := 0.0, 0
	for c, want := range classCounts {
		if want > 0 {
			relErrSum += math.Abs(est.ClassSizes[c]-float64(want)) / float64(want)
			relErrN++
		}
	}
	fmt.Printf("accuracy: frequency RMSE %.2f over %d×%d cells, class-size mean relative error %.2f%%\n",
		metrics.RMSE(est.Frequencies, truth), data.Classes, data.Items, 100*relErrSum/float64(relErrN))

	// Operational snapshot: on WAL-backed servers this also shows the
	// durability cost of the run (segments written, bytes not yet folded
	// into a snapshot).
	if stats, err := probe.Stats(); err == nil {
		fmt.Printf("server: %d reports over %d shards (%s)\n", stats.Reports, stats.Shards, stats.Protocol)
		if stats.WAL != nil {
			fmt.Printf("server wal: %d segments, %d bytes since last compaction (last snapshot %q)\n",
				stats.WAL.Segments, stats.WAL.BytesSinceCompaction, stats.WAL.LastSnapshot)
		}
	}
}

// drive submits pairs from one worker, returning per-request latencies and
// the request count.
func drive(base string, pairs []core.Pair, batch int, ndjson bool, seed uint64) ([]time.Duration, int, error) {
	client, err := collect.NewClient(base, nil, seed, collect.WithNDJSON(ndjson))
	if err != nil {
		return nil, 0, err
	}
	var lats []time.Duration
	if batch < 1 {
		// Seed-style single-report submission, one request per report.
		for _, p := range pairs {
			t0 := time.Now()
			if err := client.Submit(p); err != nil {
				return lats, len(lats), err
			}
			lats = append(lats, time.Since(t0))
		}
		return lats, len(lats), nil
	}
	for lo := 0; lo < len(pairs); lo += batch {
		hi := min(lo+batch, len(pairs))
		t0 := time.Now()
		ack, err := client.SubmitBatch(pairs[lo:hi])
		if err != nil {
			return lats, len(lats), err
		}
		lats = append(lats, time.Since(t0))
		if ack.Rejected > 0 {
			return lats, len(lats), fmt.Errorf("server rejected %d reports: %v", ack.Rejected, ack.Errors)
		}
	}
	return lats, len(lats), nil
}

// buildDataset generates the synthetic population over exactly the server's
// (classes, items) domain.
func buildDataset(name string, classes, items, users int, seed uint64) (*core.Dataset, error) {
	switch name {
	case "syntopk":
		cfg := dataset.SynTopKConfig{
			Classes:  classes,
			Items:    items,
			Users:    users,
			HeadSize: 20,
			Global:   true,
		}
		// Shrink the head window for small domains so the generator's
		// d ≥ head·(c+1) precondition holds.
		if maxHead := items / (classes + 1); cfg.HeadSize > maxHead {
			cfg.HeadSize = maxHead
		}
		if cfg.HeadSize >= 1 && classes >= 2 {
			return dataset.SynTopK(cfg, seed, 1)
		}
		fallthrough // degenerate domain: uniform is the only sensible population
	case "uniform":
		r := xrand.New(seed)
		d := &core.Dataset{Pairs: make([]core.Pair, users), Classes: classes, Items: items, Name: "UNIFORM"}
		for i := range d.Pairs {
			d.Pairs[i] = core.Pair{Class: r.Intn(classes), Item: r.Intn(items)}
		}
		return d, nil
	default:
		return nil, fmt.Errorf("mcimload: unknown dataset %q (want syntopk or uniform)", name)
	}
}

// percentiles returns p50, p99 and max of the observed latencies.
func percentiles(lats []time.Duration) (p50, p99, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(lats)-1))
		return lats[i]
	}
	return at(0.50), at(0.99), lats[len(lats)-1]
}
