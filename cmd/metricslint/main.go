// Command metricslint is the CI gate for the /metrics surface: it builds an
// in-process deployment exercising every metric-producing layer — an
// all-tier durable collection server with edge-push series registered, plus
// a multi-tenant registry — scrapes both expositions, and validates them:
// the text must parse as Prometheus exposition format, every family must
// pass the naming and structure lint (HELP+TYPE present, counters end in
// _total, histograms carry a +Inf bucket with consistent _sum/_count), and
// the catalog of required families must be present. Any problem prints and
// exits non-zero, so a renamed or structurally broken series fails CI at
// registration time — no load generation needed, since every series is
// created (at zero) when its handle is registered.
package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// requiredFamilies is the stable metric catalog: a build in which any of
// these is missing from the all-tier scrape has silently dropped coverage.
var requiredFamilies = []string{
	"mcim_ingest_reports_total",
	"mcim_ingest_batches_total",
	"mcim_ingest_bytes_total",
	"mcim_ingest_rejected_total",
	"mcim_ingest_latency_seconds",
	"mcim_merge_reports_total",
	"mcim_wal_appends_total",
	"mcim_wal_appended_bytes_total",
	"mcim_wal_fsyncs_total",
	"mcim_wal_segment_rolls_total",
	"mcim_wal_compactions_total",
	"mcim_wal_torn_truncations_total",
	"mcim_wal_replayed_records_total",
	"mcim_wal_replay_seconds",
	"mcim_wal_replay_workers",
	"mcim_estimate_cache_requests_total",
	"mcim_estimate_cache_stale_reports",
	"mcim_topk_rounds_advanced_total",
	"mcim_topk_stale_batches_total",
	"mcim_topk_sessions",
	"mcim_topk_open_sessions",
	"mcim_edge_push_total",
	"mcim_edge_drain_reports",
	"mcim_edge_unpushed_reports",
	"mcim_uptime_seconds",
	"mcim_build_info",
}

// requiredRegistryFamilies must additionally appear on the tenant
// registry's roll-up exposition.
var requiredRegistryFamilies = []string{
	"mcim_tenants",
	"mcim_admin_auth_failures_total",
	"mcim_tenant_auth_failures_total",
}

func main() {
	problems := 0
	report := func(surface string, probs []string) {
		for _, p := range probs {
			fmt.Fprintf(os.Stderr, "metricslint: %s: %s\n", surface, p)
		}
		problems += len(probs)
	}

	report("collect", lintCollect())
	report("registry", lintRegistry())

	if problems > 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %d problem(s)\n", problems)
		os.Exit(1)
	}
	fmt.Println("metricslint: ok")
}

// lintCollect scrapes a durable all-tier server (frequency + mean + topk,
// WAL-backed so the wal series register) with the edge-push series on the
// same registry, exactly as cmd/mcimedge runs it.
func lintCollect() []string {
	dir, err := os.MkdirTemp("", "metricslint-*")
	if err != nil {
		return []string{err.Error()}
	}
	defer os.RemoveAll(dir)

	proto, err := core.NewProtocol("ptscp", 3, 64, 2, 0.5)
	if err != nil {
		return []string{err.Error()}
	}
	np, err := core.NewNumericProtocol("cpmean", 3, 2, 0.5)
	if err != nil {
		return []string{err.Error()}
	}
	srv, err := collect.NewServer(proto,
		collect.WithMean(np),
		collect.WithTopKSessions(collect.TopKOptions{}),
		collect.WithWAL(dir),
		collect.WithWALTierLayout(),
	)
	if err != nil {
		return []string{err.Error()}
	}
	defer srv.Close()
	collect.NewEdgeMetrics(srv.Metrics())

	return lintHandler(srv.Handler(), "/metrics", requiredFamilies)
}

// lintRegistry scrapes a multi-tenant registry's roll-up view.
func lintRegistry() []string {
	reg, err := tenant.New(tenant.Options{})
	if err != nil {
		return []string{err.Error()}
	}
	defer reg.Close()
	if err := reg.Create(tenant.Spec{
		Name:  "default",
		Token: "t0k3n",
		Freq:  &tenant.FreqSpec{Protocol: "pts", Classes: 2, Items: 16, Epsilon: 1, Split: 0.5},
	}); err != nil {
		return []string{err.Error()}
	}
	return lintHandler(reg.Handler(), "/metrics", requiredRegistryFamilies)
}

// lintHandler scrapes one exposition through the real HTTP surface and
// returns every problem found.
func lintHandler(h http.Handler, path string, required []string) []string {
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		return []string{err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return []string{fmt.Sprintf("GET %s status %s", path, resp.Status)}
	}
	expo, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return []string{"parse: " + err.Error()}
	}
	probs := obs.Lint(expo)
	for _, name := range required {
		if expo.Family(name) == nil {
			probs = append(probs, fmt.Sprintf("required family %s missing", name))
		}
	}
	return probs
}
