// Command mcimedge is the edge tier of a federated collection deployment:
// it runs a full collection server close to the clients (same endpoints as
// mcimcollect -serve, so clients cannot tell the difference) and
// periodically drains its locally merged aggregate into a fingerprinted
// state envelope pushed to the upstream root's POST /merge. Because
// aggregates are integer counts, edge→root aggregation is bit-identical to
// every client reporting to the root directly — what changes is the
// traffic shape: the root sees one envelope per edge per push interval
// instead of millions of per-client requests.
//
// The edge learns its protocols from the upstream /config AND /mean/config
// — when the root also serves the numeric mean tier, the edge mounts it,
// accepts /mean reports locally and pushes mean envelopes through the same
// /merge endpoint (envelopes route by fingerprint) — so a fleet of edges
// is configured by pointing them at the root:
//
//	mcimedge -addr :8091 -upstream http://root:8090 -push-every 10s
//
// With -wal-dir the edge is durable too: reports accepted but not yet
// pushed survive a crash and are pushed after restart. A failed push is
// not lost — the drained envelope is merged back locally and retried on
// the next interval. Edges also expose /merge themselves, so edges can be
// stacked into deeper trees (client → edge → regional edge → root).
//
// With -tenant the edge serves one tenant of a multi-tenant root
// (mcimcollect -tenants): it learns its protocols from, and pushes its
// envelopes to, the root's /t/<name>/... routes, carrying the tenant's
// bearer token from -token. Run one edge per tenant:
//
//	mcimedge -addr :8091 -upstream http://root:8090 -tenant acme -token s3cret
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wal"
)

func main() {
	var (
		addr       = flag.String("addr", ":8091", "edge listen address")
		upstream   = flag.String("upstream", "http://localhost:8090", "root (or next-tier) server URL")
		tenantName = flag.String("tenant", "", "tenant on a multi-tenant upstream to serve and push to (empty = upstream's unprefixed routes)")
		token      = flag.String("token", "", "bearer token for the upstream tenant's data routes")
		pushEvery  = flag.Duration("push-every", 10*time.Second, "how often to push the merged aggregate upstream")
		shards     = flag.Int("shards", 0, "accumulator shards (0 = GOMAXPROCS)")
		maxBody    = flag.Int64("maxbody", 0, "request body cap in bytes (0 = default 8 MiB)")
		walDir     = flag.String("wal-dir", "", "write-ahead log directory (empty = not durable)")
		walSync    = flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | never")
		drain      = flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
		logLevel   = flag.String("log-level", "info", "structured log level: debug | info | warn | error")
		logFormat  = flag.String("log-format", "kv", "structured log line format: kv | json")
	)
	flag.Parse()
	if err := obs.SetupDefault(*logLevel, *logFormat); err != nil {
		log.Fatal(err)
	}
	// Route the stdlib log package (log.Fatal below) through the structured
	// logger so every line this process emits has the same shape.
	log.SetFlags(0)
	log.SetOutput(obs.StdlogWriter(obs.LevelError))
	logger := obs.Default()

	// Tenant targeting is a pure client-side transform: prefix the upstream
	// base with the tenant's routes and carry its bearer token on every
	// request — the fetch, every push, nothing else changes.
	upstreamBase := *upstream
	if *tenantName != "" {
		upstreamBase = collect.TenantBaseURL(upstreamBase, *tenantName)
	}
	hc := collect.BearerClient(nil, *token)

	proto, meanProto, err := fetchProtocols(upstreamBase, hc)
	if err != nil {
		log.Fatalf("fetch upstream config: %v", err)
	}
	opts := []collect.ServerOption{
		collect.WithShards(*shards), collect.WithMaxBodyBytes(*maxBody),
	}
	if meanProto != nil {
		opts = append(opts, collect.WithMean(meanProto))
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, collect.WithWAL(*walDir), collect.WithWALOptions(wal.Options{Sync: policy}))
	}
	srv, err := collect.NewServer(proto, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *walDir != "" && srv.Reports()+srv.MeanReports() > 0 {
		logger.Info("recovered unpushed reports", "dir", *walDir,
			"reports", srv.Reports()+srv.MeanReports(), "freq", srv.Reports(), "mean", srv.MeanReports())
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	tiers := ""
	if proto != nil {
		tiers = proto.Name()
	}
	if meanProto != nil {
		if tiers != "" {
			tiers += "+"
		}
		tiers += "mean(" + meanProto.Name() + ")"
	}
	logger.Info("edge collecting", "addr", *addr, "tiers", tiers,
		"upstream", upstreamBase, "push_every", *pushEvery)

	pusher := &pusher{srv: srv, proto: proto, meanProto: meanProto, upstream: upstreamBase, hc: hc,
		metrics: collect.NewEdgeMetrics(srv.Metrics())}
	ticker := time.NewTicker(*pushEvery)
	defer ticker.Stop()

loop:
	for {
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-ticker.C:
			pusher.push()
		case <-ctx.Done():
			break loop
		}
	}
	stop()
	logger.Info("shutting down", "drain", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "err", err)
	}
	// Final push so a clean shutdown leaves nothing behind on the edge.
	pusher.push()
	if err := srv.Close(); err != nil {
		logger.Error("close wal", "err", err)
	}
	if pusher.unpushed > 0 {
		logger.Warn("exiting with unpushed reports still local",
			"reports", pusher.unpushed, "recoverable", *walDir != "", "wal_dir", *walDir)
	} else {
		logger.Info("exiting clean: all reports pushed upstream")
	}
}

// fetchProtocols resolves the upstream's tiers through the shared
// collect.FetchProtocol / collect.FetchMeanProtocol rules, retrying
// briefly so an edge can come up before (or while) the root restarts. The
// edge mirrors exactly the subset of tiers the root serves: a tier is
// treated as absent only on a definitive 404 (collect.ErrTierNotServed) —
// a transient failure (timeout, 5xx) is retried rather than silently
// disabling the tier for the edge's whole lifetime. At least one tier
// must resolve.
func fetchProtocols(upstream string, hc *http.Client) (*core.Protocol, *core.NumericProtocol, error) {
	var lastErr error
	for attempt, delay := 0, time.Second; attempt < 5; attempt, delay = attempt+1, delay*2 {
		if attempt > 0 {
			time.Sleep(delay)
		}
		proto, _, ferr := collect.FetchProtocol(upstream, hc)
		meanProto, _, merr := collect.FetchMeanProtocol(upstream, hc)
		freqAbsent := errors.Is(ferr, collect.ErrTierNotServed)
		meanAbsent := errors.Is(merr, collect.ErrTierNotServed)
		if freqAbsent && meanAbsent {
			return nil, nil, fmt.Errorf("upstream %s serves neither the frequency nor the mean tier", upstream)
		}
		if (ferr == nil || freqAbsent) && (merr == nil || meanAbsent) {
			if freqAbsent {
				proto = nil
			}
			if meanAbsent {
				meanProto = nil
			}
			return proto, meanProto, nil
		}
		lastErr = errors.Join(ferr, merr)
	}
	return nil, nil, lastErr
}

// pusher drains the edge aggregates — the frequency tier's and, when
// mounted, the mean tier's — and ships each as one envelope upstream,
// merging an envelope back on a retriable failure so the reports ride the
// next push instead of being lost.
type pusher struct {
	srv       *collect.Server
	proto     *core.Protocol
	meanProto *core.NumericProtocol
	upstream  string
	hc        *http.Client
	metrics   *collect.EdgeMetrics
	unpushed  int
}

func (p *pusher) push() {
	// Whatever happens below, the "unpushed" gauge must reflect what is
	// actually still held locally, across both tiers.
	defer func() {
		p.unpushed = p.srv.Reports() + p.srv.MeanReports()
		p.metrics.Unpushed.Set(float64(p.unpushed))
	}()
	if p.proto != nil {
		env, n, ok := drainEnvelope("freq", p.srv.Drain, p.proto.MarshalAggregator)
		if ok {
			p.metrics.DrainReports.Observe(float64(n))
			p.ship(env, n, "freq")
		}
	}
	if p.meanProto != nil {
		env, n, ok := drainEnvelope("mean", p.srv.DrainMean, p.meanProto.MarshalAggregator)
		if ok {
			p.metrics.DrainReports.Observe(float64(n))
			p.ship(env, n, "mean")
		}
	}
}

// drainEnvelope drains one tier and marshals the taken aggregate,
// reporting ok=false when there is nothing to push (empty, or the drain /
// marshal failed — failures keep the reports local and are logged).
func drainEnvelope[A interface{ N() int }](tier string, drain func() (A, error), marshal func(A) ([]byte, error)) (env []byte, n int, ok bool) {
	taken, err := drain()
	if err != nil {
		// Drain is atomic: the reports stayed local (in memory and in the
		// WAL), so the next tick simply retries the whole drain.
		obs.Default().Error("push: drain failed, reports held locally", "tier", tier, "err", err)
		return nil, 0, false
	}
	if n = taken.N(); n == 0 {
		return nil, 0, false
	}
	env, err = marshal(taken)
	if err != nil {
		obs.Default().Error("push: marshal failed, reports dropped", "tier", tier, "reports", n, "err", err)
		return nil, 0, false
	}
	return env, n, true
}

// ship POSTs one envelope to the upstream /merge and handles the verdict;
// tier distinguishes the tiers in logs.
func (p *pusher) ship(env []byte, n int, tier string) {
	logger := obs.Default().With("tier", tier, "reports", n)
	verdict, err := postMerge(p.upstream, p.hc, env)
	switch verdict {
	case pushOK:
		p.metrics.PushOK.Inc()
		logger.Info("pushed reports upstream")
	case pushRetriable:
		p.metrics.PushRetriable.Inc()
		// The upstream definitively did not ingest the envelope and the
		// condition is transient (5xx, or the connection never came up):
		// fold it back in and retry next tick together with whatever
		// arrived meanwhile. MergeState routes the envelope to its tier by
		// fingerprint.
		if _, merr := p.srv.MergeState(env); merr != nil {
			logger.Error("push: upstream unavailable AND local re-merge failed, reports dropped",
				"err", err, "merge_err", merr)
			return
		}
		logger.Warn("push: upstream unavailable, reports held for retry", "err", err)
	case pushPermanent:
		p.metrics.PushPermanent.Inc()
		// The upstream refused the envelope for a reason a retry cannot
		// fix (fingerprint mismatch after a root reconfiguration, an
		// envelope over the upstream's size cap): retrying the identical
		// push forever would only grow the local backlog without bound.
		// Drop it and say so loudly — this is an operator problem.
		logger.Error("push: upstream permanently refused, reports dropped — check that the upstream configuration matches", "err", err)
	default: // pushAmbiguous
		p.metrics.PushAmbiguous.Inc()
		// The request may have been delivered and the response lost, so
		// the upstream may already have ingested the envelope. Re-pushing
		// could double-count every report in it, which would silently skew
		// estimates; dropping loses at most this push's noise-level
		// contribution. Same at-most-once call collect.Client makes for
		// in-flight batches.
		logger.Error("push: transport error, reports dropped (upstream may have ingested them)", "err", err)
	}
}

// pushVerdict classifies one upstream push attempt.
type pushVerdict int

const (
	pushOK        pushVerdict = iota // 200: ingested
	pushRetriable                    // definitively not ingested, transient (5xx, dial failure)
	pushPermanent                    // definitively not ingested, retry cannot fix it (4xx)
	pushAmbiguous                    // transport died mid-exchange; may have been ingested
)

// postMerge ships one state envelope to the upstream /merge and classifies
// the outcome: an error status means the envelope definitively was not
// folded in (5xx transient, 4xx permanent — the same split collect.Client
// retries on); a dial-level failure never sent anything and is transient;
// any other transport error is ambiguous because the request may have
// landed before the response was lost.
func postMerge(upstream string, hc *http.Client, env []byte) (pushVerdict, error) {
	resp, err := hc.Post(upstream+"/merge", collect.StateContentType, bytes.NewReader(env))
	if err != nil {
		var op *net.OpError
		if errors.As(err, &op) && op.Op == "dial" {
			return pushRetriable, err // never connected: nothing was sent
		}
		return pushAmbiguous, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("merge status %s: %s", resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode >= 500 {
			return pushRetriable, err
		}
		return pushPermanent, err
	}
	io.Copy(io.Discard, resp.Body)
	return pushOK, nil
}
