// Command mcimedge is the edge tier of a federated collection deployment:
// it runs a full collection server close to the clients (same endpoints as
// mcimcollect -serve, so clients cannot tell the difference) and
// periodically drains its locally merged aggregate into a fingerprinted
// state envelope pushed to the upstream root's POST /merge. Because
// aggregates are integer counts, edge→root aggregation is bit-identical to
// every client reporting to the root directly — what changes is the
// traffic shape: the root sees one envelope per edge per push interval
// instead of millions of per-client requests.
//
// The edge learns its protocol from the upstream /config, so a fleet of
// edges is configured by pointing them at the root:
//
//	mcimedge -addr :8091 -upstream http://root:8090 -push-every 10s
//
// With -wal-dir the edge is durable too: reports accepted but not yet
// pushed survive a crash and are pushed after restart. A failed push is
// not lost — the drained envelope is merged back locally and retried on
// the next interval. Edges also expose /merge themselves, so edges can be
// stacked into deeper trees (client → edge → regional edge → root).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", ":8091", "edge listen address")
		upstream  = flag.String("upstream", "http://localhost:8090", "root (or next-tier) server URL")
		pushEvery = flag.Duration("push-every", 10*time.Second, "how often to push the merged aggregate upstream")
		shards    = flag.Int("shards", 0, "accumulator shards (0 = GOMAXPROCS)")
		maxBody   = flag.Int64("maxbody", 0, "request body cap in bytes (0 = default 8 MiB)")
		walDir    = flag.String("wal-dir", "", "write-ahead log directory (empty = not durable)")
		walSync   = flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | never")
		drain     = flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()

	proto, _, err := fetchProtocol(*upstream)
	if err != nil {
		log.Fatalf("fetch upstream config: %v", err)
	}
	opts := []collect.ServerOption{
		collect.WithShards(*shards), collect.WithMaxBodyBytes(*maxBody),
	}
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, collect.WithWAL(*walDir), collect.WithWALOptions(wal.Options{Sync: policy}))
	}
	srv, err := collect.NewServer(proto, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *walDir != "" && srv.Reports() > 0 {
		log.Printf("recovered %d unpushed reports from %s", srv.Reports(), *walDir)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("edge collecting %s reports on %s, pushing to %s every %v",
		proto.Name(), *addr, *upstream, *pushEvery)

	pusher := &pusher{srv: srv, proto: proto, upstream: *upstream}
	ticker := time.NewTicker(*pushEvery)
	defer ticker.Stop()

loop:
	for {
		select {
		case err := <-errc:
			log.Fatal(err)
		case <-ticker.C:
			pusher.push()
		case <-ctx.Done():
			break loop
		}
	}
	stop()
	log.Printf("shutting down (draining for up to %v)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	// Final push so a clean shutdown leaves nothing behind on the edge.
	pusher.push()
	if err := srv.Close(); err != nil {
		log.Printf("close wal: %v", err)
	}
	if pusher.unpushed > 0 {
		log.Printf("exiting with %d unpushed reports still local%s", pusher.unpushed, walNote(*walDir))
	} else {
		log.Printf("exiting clean: all reports pushed upstream")
	}
}

func walNote(dir string) string {
	if dir == "" {
		return " (LOST: no -wal-dir)"
	}
	return " (recoverable from " + dir + ")"
}

// fetchProtocol resolves the upstream round's protocol through the shared
// collect.FetchProtocol rules, retrying briefly so an edge can come up
// before (or while) the root restarts.
func fetchProtocol(upstream string) (*core.Protocol, collect.WireConfig, error) {
	var lastErr error
	for attempt, delay := 0, time.Second; attempt < 5; attempt, delay = attempt+1, delay*2 {
		if attempt > 0 {
			time.Sleep(delay)
		}
		proto, cfg, err := collect.FetchProtocol(upstream, nil)
		if err == nil {
			return proto, cfg, nil
		}
		lastErr = err
	}
	return nil, collect.WireConfig{}, lastErr
}

// pusher drains the edge aggregate and ships it upstream, merging the
// envelope back on failure so the reports ride the next push instead of
// being lost.
type pusher struct {
	srv      *collect.Server
	proto    *core.Protocol
	upstream string
	unpushed int
}

func (p *pusher) push() {
	taken, err := p.srv.Drain()
	if err != nil {
		// Drain is atomic: the reports stayed local (in memory and in the
		// WAL), so the next tick simply retries the whole drain.
		log.Printf("push: drain: %v (reports held locally)", err)
		p.unpushed = p.srv.Reports()
		return
	}
	n := taken.N()
	if n == 0 {
		p.unpushed = p.srv.Reports()
		return
	}
	env, err := p.proto.MarshalAggregator(taken)
	if err != nil {
		log.Printf("push: marshal %d reports: %v (dropped)", n, err)
		p.unpushed = p.srv.Reports()
		return
	}
	verdict, err := postMerge(p.upstream, env)
	// Whatever happens below, the "unpushed" gauge must reflect what is
	// actually still held locally.
	defer func() { p.unpushed = p.srv.Reports() }()
	switch verdict {
	case pushOK:
		log.Printf("pushed %d reports upstream", n)
	case pushRetriable:
		// The upstream definitively did not ingest the envelope and the
		// condition is transient (5xx, or the connection never came up):
		// fold it back in and retry next tick together with whatever
		// arrived meanwhile.
		if _, merr := p.srv.MergeState(env); merr != nil {
			log.Printf("push: upstream unavailable (%v) AND local re-merge failed (%v): %d reports dropped", err, merr, n)
			return
		}
		log.Printf("push: upstream unavailable (%v): %d reports held for retry", err, n)
	case pushPermanent:
		// The upstream refused the envelope for a reason a retry cannot
		// fix (fingerprint mismatch after a root reconfiguration, an
		// envelope over the upstream's size cap): retrying the identical
		// push forever would only grow the local backlog without bound.
		// Drop it and say so loudly — this is an operator problem.
		log.Printf("push: upstream permanently refused (%v): %d reports dropped — check that the upstream round configuration matches", err, n)
	default: // pushAmbiguous
		// The request may have been delivered and the response lost, so
		// the upstream may already have ingested the envelope. Re-pushing
		// could double-count every report in it, which would silently skew
		// estimates; dropping loses at most this push's noise-level
		// contribution. Same at-most-once call collect.Client makes for
		// in-flight batches.
		log.Printf("push: transport error (%v): %d reports dropped (upstream may have ingested them)", err, n)
	}
}

// pushVerdict classifies one upstream push attempt.
type pushVerdict int

const (
	pushOK        pushVerdict = iota // 200: ingested
	pushRetriable                    // definitively not ingested, transient (5xx, dial failure)
	pushPermanent                    // definitively not ingested, retry cannot fix it (4xx)
	pushAmbiguous                    // transport died mid-exchange; may have been ingested
)

// postMerge ships one state envelope to the upstream /merge and classifies
// the outcome: an error status means the envelope definitively was not
// folded in (5xx transient, 4xx permanent — the same split collect.Client
// retries on); a dial-level failure never sent anything and is transient;
// any other transport error is ambiguous because the request may have
// landed before the response was lost.
func postMerge(upstream string, env []byte) (pushVerdict, error) {
	resp, err := http.Post(upstream+"/merge", "application/octet-stream", bytes.NewReader(env))
	if err != nil {
		var op *net.OpError
		if errors.As(err, &op) && op.Op == "dial" {
			return pushRetriable, err // never connected: nothing was sent
		}
		return pushAmbiguous, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("merge status %s: %s", resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode >= 500 {
			return pushRetriable, err
		}
		return pushPermanent, err
	}
	io.Copy(io.Discard, resp.Body)
	return pushOK, nil
}
