// Command mcimcollect runs the HTTP collection pipeline: an aggregation
// server for correlated-perturbation reports, and a client mode that
// simulates a user population submitting to it.
//
// Server:
//
//	mcimcollect -serve -addr :8090 -classes 5 -items 1000 -eps 2
//
// Simulated clients (each user perturbs locally; raw pairs never leave the
// process):
//
//	mcimcollect -simulate -url http://localhost:8090 -users 10000 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/xrand"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "run the aggregation server")
		simulate = flag.Bool("simulate", false, "run a simulated client population")
		addr     = flag.String("addr", ":8090", "server listen address")
		url      = flag.String("url", "http://localhost:8090", "server URL (simulate mode)")
		classes  = flag.Int("classes", 5, "number of classes")
		items    = flag.Int("items", 1000, "item domain size")
		eps      = flag.Float64("eps", 2, "privacy budget ε")
		split    = flag.Float64("split", 0.5, "label budget fraction ε₁/ε")
		shards   = flag.Int("shards", 0, "accumulator shards (serve mode; 0 = GOMAXPROCS)")
		maxBody  = flag.Int64("maxbody", 0, "request body cap in bytes (serve mode; 0 = default 8 MiB)")
		users    = flag.Int("users", 10000, "simulated users (simulate mode)")
		batch    = flag.Int("batch", 256, "reports per batch request (simulate mode; 0 = one request per report)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	switch {
	case *serve:
		srv, err := collect.NewServer(*classes, *items, *eps, *split,
			collect.WithShards(*shards), collect.WithMaxBodyBytes(*maxBody))
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("collecting on %s (c=%d d=%d ε=%v, %d shards)", *addr, *classes, *items, *eps, srv.Shards())
		log.Fatal(http.ListenAndServe(*addr, srv.Handler()))

	case *simulate:
		client, err := collect.NewClient(*url, nil, *seed, collect.WithBatchSize(*batch))
		if err != nil {
			log.Fatal(err)
		}
		// The population domain comes from the server's config, not the
		// local -classes/-items flags: submitting pairs outside the round's
		// domain is a client bug.
		cfg := client.Config()
		r := xrand.New(*seed)
		start := time.Now()
		for i := 0; i < *users; i++ {
			// A skewed synthetic population: class sizes decay, items
			// Zipf-ish within class.
			pair := core.Pair{Class: r.Intn(cfg.Classes), Item: r.Intn(1 + r.Intn(cfg.Items))}
			if *batch > 0 {
				err = client.Buffer(pair)
			} else {
				err = client.Submit(pair)
			}
			if err != nil {
				log.Fatalf("user %d: %v", i, err)
			}
		}
		if err := client.Flush(); err != nil {
			log.Fatal(err)
		}
		est, err := client.Estimates()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %d reports in %v\n", *users, time.Since(start).Round(time.Millisecond))
		fmt.Printf("server total: %d reports\n", est.Reports)
		for c, sz := range est.ClassSizes {
			fmt.Printf("class %d estimated size: %.0f\n", c, sz)
		}

	default:
		flag.Usage()
	}
}
