// Command mcimcollect runs the HTTP collection pipeline: an aggregation
// server for correlated-perturbation reports, and a client mode that
// simulates a user population submitting to it.
//
// Server:
//
//	mcimcollect -serve -addr :8090 -classes 5 -items 1000 -eps 2
//
// Simulated clients (each user perturbs locally; raw pairs never leave the
// process):
//
//	mcimcollect -simulate -url http://localhost:8090 -users 10000 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/xrand"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "run the aggregation server")
		simulate = flag.Bool("simulate", false, "run a simulated client population")
		addr     = flag.String("addr", ":8090", "server listen address")
		url      = flag.String("url", "http://localhost:8090", "server URL (simulate mode)")
		classes  = flag.Int("classes", 5, "number of classes")
		items    = flag.Int("items", 1000, "item domain size")
		eps      = flag.Float64("eps", 2, "privacy budget ε")
		split    = flag.Float64("split", 0.5, "label budget fraction ε₁/ε")
		users    = flag.Int("users", 10000, "simulated users (simulate mode)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	switch {
	case *serve:
		srv, err := collect.NewServer(*classes, *items, *eps, *split)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("collecting on %s (c=%d d=%d ε=%v)", *addr, *classes, *items, *eps)
		log.Fatal(http.ListenAndServe(*addr, srv.Handler()))

	case *simulate:
		client, err := collect.NewClient(*url, nil, *seed)
		if err != nil {
			log.Fatal(err)
		}
		r := xrand.New(*seed)
		start := time.Now()
		for i := 0; i < *users; i++ {
			// A skewed synthetic population: class sizes decay, items
			// Zipf-ish within class.
			cl := r.Intn(*classes)
			item := r.Intn(1 + r.Intn(*items))
			if err := client.Submit(core.Pair{Class: cl, Item: item}); err != nil {
				log.Fatalf("user %d: %v", i, err)
			}
		}
		est, err := client.Estimates()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %d reports in %v\n", *users, time.Since(start).Round(time.Millisecond))
		fmt.Printf("server total: %d reports\n", est.Reports)
		for c, sz := range est.ClassSizes {
			fmt.Printf("class %d estimated size: %.0f\n", c, sz)
		}

	default:
		flag.Usage()
	}
}
