// Command mcimcollect runs the HTTP collection pipeline: an aggregation
// server for any of the frequency-estimation frameworks (hec, ptj, pts,
// ptscp), and a client mode that simulates a user population submitting to
// it. The server advertises its framework in /config; clients reconstruct
// the matching encoder from it, so the simulate mode needs no framework
// flag of its own.
//
// Server (pick the framework with -framework):
//
//	mcimcollect -serve -addr :8090 -framework ptscp -classes 5 -items 1000 -eps 2
//
// With -wal-dir the server is durable: accepted reports hit a write-ahead
// log before any aggregator, and a restart on the same directory recovers
// bit-identical estimates even after a SIGKILL. -wal-sync picks the fsync
// policy (always | interval | never) and -wal-compact-after how much log
// may accumulate before it is folded into a snapshot:
//
//	mcimcollect -serve -wal-dir /var/lib/mcim/wal -wal-sync interval
//
// With -mean the server additionally hosts the numeric mean tier under
// /mean: clients perturb (label, value) pairs locally and the server
// calibrates classwise means and class sizes. The tier shares the server's
// classes, ε and split, is durable under -wal-dir (its log lives in
// <dir>/mean) and federates through the same POST /merge. Pass
// -framework none to serve the mean tier alone:
//
//	mcimcollect -serve -framework none -mean cpmean -classes 3 -eps 2
//
// With -topk the server additionally hosts interactive top-k mining
// sessions under /topk/sessions: clients create a session, fetch each
// round's candidate-space broadcast, perturb locally and post one-round
// reports; rounds seal on quota and the final round serves the per-class
// rankings (drive one with mcimload -mode topk). On a WAL-backed server,
// in-flight sessions are durable too.
//
// With -tenants the server is multi-tenant: the flag names a JSON file
// holding an array of tenant specs (see internal/tenant.Spec), each a named
// collection instance with its own tiers, WAL subdirectory, bearer token,
// body cap, and rate limit. Data routes live under /t/<name>/...; the
// unprefixed routes alias a tenant named "default" when the file defines
// one. Tenants can also be created and deleted at runtime through
// POST/DELETE /admin/tenants/{name}, guarded by -admin-token; the registry
// write-ahead logs the tenant set under <wal-dir>/registry, so a restart —
// even after SIGKILL — resurrects every tenant and its state:
//
//	mcimcollect -serve -tenants tenants.json -admin-token s3cret -wal-dir /var/lib/mcim
//
// In -tenants mode the per-framework flags are ignored; each tenant's spec
// is the whole configuration.
//
// The server shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests and logging the final ingested-report count.
//
// Simulated clients (each user perturbs locally; raw pairs never leave the
// process):
//
//	mcimcollect -simulate -url http://localhost:8090 -users 10000 -seed 7
package main

import (
	"context"
	"crypto/subtle"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/wal"
	"repro/internal/xrand"
)

func main() {
	var (
		serve     = flag.Bool("serve", false, "run the aggregation server")
		simulate  = flag.Bool("simulate", false, "run a simulated client population")
		addr      = flag.String("addr", ":8090", "server listen address")
		url       = flag.String("url", "http://localhost:8090", "server URL (simulate mode)")
		framework = flag.String("framework", "ptscp", "frequency-estimation framework (serve mode): hec | ptj | pts | ptscp | pts+<oue|sue|olh|grr|adaptive> | none (serve another tier alone)")
		meanOn    = flag.String("mean", "", "also serve the numeric mean tier under /mean: hecmean | ptsmean | cpmean (serve mode; empty = off)")
		classes   = flag.Int("classes", 5, "number of classes")
		items     = flag.Int("items", 1000, "item domain size")
		eps       = flag.Float64("eps", 2, "privacy budget ε")
		split     = flag.Float64("split", 0.5, "label budget fraction ε₁/ε (pts, ptscp)")
		shards    = flag.Int("shards", 0, "accumulator shards (serve mode; 0 = GOMAXPROCS)")
		maxBody   = flag.Int64("maxbody", 0, "request body cap in bytes (serve mode; 0 = default 8 MiB)")
		walDir    = flag.String("wal-dir", "", "write-ahead log directory (serve mode; empty = not durable)")
		walSync   = flag.String("wal-sync", "interval", "WAL fsync policy: always | interval | never")
		walEvery  = flag.Duration("wal-sync-every", 0, "flush cadence under -wal-sync interval (0 = default 200ms)")
		walSeg    = flag.Int64("wal-segment-bytes", 0, "WAL segment roll size (0 = default 4 MiB)")
		walCAfter = flag.Int64("wal-compact-after", 0, "WAL bytes past the last snapshot before background compaction (0 = default 64 MiB)")
		topkOn    = flag.Bool("topk", false, "serve interactive top-k mining sessions under /topk/sessions (serve mode)")
		topkMax   = flag.Int("topk-max-sessions", 0, "cap on tracked mining sessions (serve mode; 0 = default 64)")
		tenants   = flag.String("tenants", "", "JSON file with an array of tenant specs: serve a multi-tenant registry instead of one collection (serve mode)")
		adminTok  = flag.String("admin-token", "", "bearer token guarding /admin/tenants and /debug/pprof (serve modes; empty = open)")
		maxTen    = flag.Int("max-tenants", 0, "cap on hosted tenants (tenants mode; 0 = default 1024)")
		users     = flag.Int("users", 10000, "simulated users (simulate mode)")
		batch     = flag.Int("batch", 256, "reports per batch request (simulate mode; 0 = one request per report)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		drain     = flag.Duration("drain", 5*time.Second, "graceful shutdown drain timeout (serve mode)")
		logLevel  = flag.String("log-level", "info", "structured log level: debug | info | warn | error")
		logFormat = flag.String("log-format", "kv", "structured log line format: kv | json")
	)
	flag.Parse()
	if err := obs.SetupDefault(*logLevel, *logFormat); err != nil {
		log.Fatal(err)
	}
	// Route the stdlib log package (log.Fatal below) through the structured
	// logger so every line this process emits has the same shape.
	log.SetFlags(0)
	log.SetOutput(obs.StdlogWriter(obs.LevelError))
	logger := obs.Default()

	switch {
	case *serve && *tenants != "":
		walOpts := wal.Options{SegmentBytes: *walSeg, SyncEvery: *walEvery}
		if *walDir != "" {
			policy, err := wal.ParseSyncPolicy(*walSync)
			if err != nil {
				log.Fatal(err)
			}
			walOpts.Sync = policy
		}
		specData, err := os.ReadFile(*tenants)
		if err != nil {
			log.Fatal(err)
		}
		specs, err := tenant.ParseSpecs(specData)
		if err != nil {
			log.Fatal(err)
		}
		reg, err := tenant.New(tenant.Options{
			Dir:        *walDir,
			WAL:        walOpts,
			MaxTenants: *maxTen,
			AdminToken: *adminTok,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Ensure, not Create: a restart replays the registry log first, so
		// tenants from a previous run (with their accumulated state) win
		// over the startup file.
		for _, sp := range specs {
			if err := reg.Ensure(sp); err != nil {
				log.Fatal(err)
			}
		}
		if *walDir != "" {
			logger.Info("tenant registry durable", "dir", *walDir, "sync", *walSync)
		}
		logger.Info("serving tenants", "count", len(reg.Names()), "addr", *addr, "names", fmt.Sprint(reg.Names()))
		runServer(*addr, reg.Handler(), *drain, reg.Close, func() {
			for _, name := range reg.Names() {
				if srv := reg.Tenant(name); srv != nil {
					logger.Info("tenant final total", "tenant", name, "reports", srv.Reports()+srv.MeanReports())
				}
			}
		})

	case *serve:
		var proto *core.Protocol
		if *framework != "" && *framework != "none" {
			var err error
			proto, err = core.NewProtocol(*framework, *classes, *items, *eps, *split)
			if err != nil {
				log.Fatal(err)
			}
		}
		opts := []collect.ServerOption{
			collect.WithShards(*shards), collect.WithMaxBodyBytes(*maxBody),
		}
		if *meanOn != "" {
			np, err := core.NewNumericProtocol(*meanOn, *classes, *eps, *split)
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, collect.WithMean(np))
		}
		if *topkOn {
			opts = append(opts, collect.WithTopKSessions(collect.TopKOptions{MaxSessions: *topkMax}))
		}
		if *walDir != "" {
			policy, err := wal.ParseSyncPolicy(*walSync)
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts,
				collect.WithWAL(*walDir),
				collect.WithWALOptions(wal.Options{
					SegmentBytes: *walSeg,
					Sync:         policy,
					SyncEvery:    *walEvery,
				}),
				collect.WithCompactAfter(*walCAfter))
		}
		srv, err := collect.NewServer(proto, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if *walDir != "" {
			logger.Info("write-ahead log open", "dir", *walDir, "sync", *walSync,
				"recovered_reports", srv.Reports()+srv.MeanReports())
		}
		if *meanOn != "" {
			np := srv.MeanProtocol()
			logger.Info("numeric mean tier enabled", "path", "/mean",
				"protocol", np.Name(), "classes", np.Classes(), "eps", np.Epsilon())
		}
		if *topkOn {
			logger.Info("top-k mining sessions enabled", "path", "/topk/sessions")
		}
		if p := srv.Protocol(); p != nil {
			logger.Info("collecting", "addr", *addr, "protocol", p.Name(),
				"classes", p.Classes(), "items", p.Items(), "eps", p.Epsilon(), "shards", srv.Shards())
		} else {
			logger.Info("collecting", "addr", *addr, "freq_tier", false)
		}
		runServer(*addr, withPprof(srv.Handler(), *adminTok), *drain, srv.Close, func() {
			logger.Info("final total", "reports", srv.Reports()+srv.MeanReports(),
				"freq", srv.Reports(), "mean", srv.MeanReports())
		})

	case *simulate:
		client, err := collect.NewClient(*url, nil, *seed, collect.WithBatchSize(*batch))
		if err != nil {
			log.Fatal(err)
		}
		// The population domain (and the framework encoder) comes from the
		// server's config, not the local flags: submitting pairs outside the
		// round's domain is a client bug.
		cfg := client.Config()
		logger.Info("server config", "protocol", cfg.Protocol,
			"classes", cfg.Classes, "items", cfg.Items, "eps", cfg.Epsilon)
		r := xrand.New(*seed)
		start := time.Now()
		for i := 0; i < *users; i++ {
			// A skewed synthetic population: class sizes decay, items
			// Zipf-ish within class.
			pair := core.Pair{Class: r.Intn(cfg.Classes), Item: r.Intn(1 + r.Intn(cfg.Items))}
			if *batch > 0 {
				err = client.Buffer(pair)
			} else {
				err = client.Submit(pair)
			}
			if err != nil {
				log.Fatalf("user %d: %v", i, err)
			}
		}
		if err := client.Flush(); err != nil {
			log.Fatal(err)
		}
		est, err := client.Estimates()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %d reports in %v\n", *users, time.Since(start).Round(time.Millisecond))
		fmt.Printf("server total: %d reports\n", est.Reports)
		for c, sz := range est.ClassSizes {
			fmt.Printf("class %d estimated size: %.0f\n", c, sz)
		}

	default:
		flag.Usage()
	}
}

// withPprof wraps a plain collect handler with the net/http/pprof routes,
// guarded by the admin bearer token (open when the token is empty — the
// same development-mode rule as the tenant admin routes). The multi-tenant
// registry mounts its own guarded pprof, so this is only for plain serve.
func withPprof(h http.Handler, token string) http.Handler {
	guard := func(hf http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if token != "" {
				auth := req.Header.Get("Authorization")
				const prefix = "Bearer "
				if len(auth) < len(prefix) || auth[:len(prefix)] != prefix ||
					subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(token)) != 1 {
					w.Header().Set("WWW-Authenticate", `Bearer realm="pprof"`)
					http.Error(w, "missing or invalid admin token", http.StatusUnauthorized)
					return
				}
			}
			hf(w, req)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", guard(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", guard(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", guard(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", guard(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", guard(pprof.Trace))
	mux.Handle("/", h)
	return mux
}

// runServer serves handler until SIGINT/SIGTERM, then drains in-flight
// requests, closes the durable state via closer, and runs final to log the
// run's totals.
func runServer(addr string, handler http.Handler, drain time.Duration, closer func() error, final func()) {
	hs := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()

	select {
	case err := <-errc:
		// Listener failure before any signal.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	obs.Default().Info("shutting down", "drain", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		obs.Default().Error("shutdown", "err", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		obs.Default().Error("serve", "err", err)
	}
	if err := closer(); err != nil {
		obs.Default().Error("close durable state", "err", err)
	}
	final()
}
