// Command mcimbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mcimbench -list
//	mcimbench -exp fig7a [-trials 5] [-scale 0.05] [-seed 7] [-csv out.csv]
//	mcimbench -exp all
//
// Each experiment prints the same rows/series the paper reports, plus a
// note describing the expected shape. Scale is the dataset size relative to
// the paper (e.g. 0.01 = 1%); defaults are sized for a laptop-class box.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (or 'all')")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		trials = flag.Int("trials", 0, "trials to average (0 = experiment default)")
		scale  = flag.Float64("scale", 0, "dataset scale in (0,1] (0 = experiment default)")
		seed   = flag.Uint64("seed", 0, "root seed (0 = fixed default)")
		csv    = flag.String("csv", "", "also write result as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.List() {
			e, _ := experiment.ByID(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mcimbench: -exp or -list required")
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiment.Config{Seed: *seed, Scale: *scale, Trials: *trials}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.List()
	}
	for _, id := range ids {
		e, err := experiment.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcimbench:", err)
			os.Exit(1)
		}
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcimbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(table.Render())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csv != "" {
			name := *csv
			if *exp == "all" {
				name = id + "_" + *csv
			}
			if err := os.WriteFile(name, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "mcimbench: write %s: %v\n", name, err)
				os.Exit(1)
			}
		}
	}
}
