package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCollectIngest/single-mutex         	   35192	     33457 ns/op	     29889 reports/s	    8814 B/op	     105 allocs/op
BenchmarkCollectIngest/batched-sharded      	     678	   1807064 ns/op	    283333 reports/s	  496883 B/op	    4031 allocs/op
BenchmarkGRRPerturb-8   	12345678	        95.31 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	5.912s
`

func TestParse(t *testing.T) {
	snap, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.Pkg != "repro" {
		t.Fatalf("header %+v", snap)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	single := snap.Benchmarks[0]
	if single.Name != "BenchmarkCollectIngest/single-mutex" || single.Iterations != 35192 {
		t.Fatalf("first benchmark %+v", single)
	}
	if single.Metrics["reports_per_s"] != 29889 {
		t.Fatalf("reports/s metric %v", single.Metrics)
	}
	if single.Metrics["ns_per_op"] != 33457 || single.Metrics["allocs_per_op"] != 105 {
		t.Fatalf("standard metrics %v", single.Metrics)
	}
	grr := snap.Benchmarks[2]
	if grr.Name != "BenchmarkGRRPerturb" || grr.Procs != 8 {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", grr)
	}
	if grr.Metrics["ns_per_op"] != 95.31 {
		t.Fatalf("fractional ns/op %v", grr.Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, err := parseLine("BenchmarkX"); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := parseLine("BenchmarkX notanumber 12 ns/op"); err == nil {
		t.Fatal("bad iteration count accepted")
	}
	if _, err := parseLine("BenchmarkX 10 twelve ns/op"); err == nil {
		t.Fatal("bad metric value accepted")
	}
}

// TestParseLineSubBenchmarkDash guards the name/procs split: a trailing
// -N is a procs suffix, but a dash inside a sub-benchmark name is not.
func TestParseLineSubBenchmarkDash(t *testing.T) {
	b, err := parseLine("BenchmarkCollectIngest/batched-sharded 678 1807064 ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "BenchmarkCollectIngest/batched-sharded" || b.Procs != 1 {
		t.Fatalf("parsed %+v", b)
	}
}

// TestCompare pins the gate semantics: an artificially degraded benchmark
// must fail the comparison, in-tolerance drift and improvements must not,
// and missing/new benchmarks are warnings rather than failures.
func TestCompare(t *testing.T) {
	bench := func(name string, metrics map[string]float64) Benchmark {
		return Benchmark{Name: name, Procs: 1, Iterations: 1, Metrics: metrics}
	}
	old := &Snapshot{Benchmarks: []Benchmark{
		bench("BenchmarkIngest/batched", map[string]float64{"reports_per_s": 1_000_000, "ns_per_op": 500}),
		bench("BenchmarkPerturb", map[string]float64{"ns_per_op": 100}),
		bench("BenchmarkRenamedAway", map[string]float64{"ns_per_op": 10}),
	}}

	t.Run("degraded throughput fails", func(t *testing.T) {
		fresh := &Snapshot{Benchmarks: []Benchmark{
			// 40% throughput loss: well past the 15% gate.
			bench("BenchmarkIngest/batched", map[string]float64{"reports_per_s": 600_000, "ns_per_op": 833}),
			bench("BenchmarkPerturb", map[string]float64{"ns_per_op": 100}),
		}}
		report, regressed := compare(old, fresh, 0.15)
		if !regressed {
			t.Fatalf("40%% throughput regression passed the gate:\n%s", report)
		}
		if !strings.Contains(report, "FAIL BenchmarkIngest/batched") {
			t.Fatalf("report does not name the regressed benchmark:\n%s", report)
		}
	})

	t.Run("in-tolerance drift passes", func(t *testing.T) {
		fresh := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkIngest/batched", map[string]float64{"reports_per_s": 900_000, "ns_per_op": 555}),
			bench("BenchmarkPerturb", map[string]float64{"ns_per_op": 110}),
			bench("BenchmarkBrandNew", map[string]float64{"ns_per_op": 1}),
		}}
		report, regressed := compare(old, fresh, 0.15)
		if regressed {
			t.Fatalf("10%% drift failed the gate:\n%s", report)
		}
		if !strings.Contains(report, "WARN BenchmarkRenamedAway: missing") {
			t.Fatalf("missing benchmark not warned about:\n%s", report)
		}
		if !strings.Contains(report, "NEW  BenchmarkBrandNew") {
			t.Fatalf("new benchmark not listed:\n%s", report)
		}
	})

	t.Run("ns/op fallback catches slowdown", func(t *testing.T) {
		fresh := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkIngest/batched", map[string]float64{"reports_per_s": 1_000_000, "ns_per_op": 500}),
			// No reports/s on this one: the 2x ns/op slowdown must still fail.
			bench("BenchmarkPerturb", map[string]float64{"ns_per_op": 200}),
		}}
		report, regressed := compare(old, fresh, 0.15)
		if !regressed {
			t.Fatalf("2x ns/op slowdown passed the gate:\n%s", report)
		}
		if !strings.Contains(report, "FAIL BenchmarkPerturb") {
			t.Fatalf("report does not name the slowed benchmark:\n%s", report)
		}
	})

	t.Run("throughput preferred over ns/op", func(t *testing.T) {
		// reports/s held steady; ns/op column noisy. The gate must judge by
		// throughput and pass.
		fresh := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkIngest/batched", map[string]float64{"reports_per_s": 1_000_000, "ns_per_op": 900}),
			bench("BenchmarkPerturb", map[string]float64{"ns_per_op": 100}),
			bench("BenchmarkRenamedAway", map[string]float64{"ns_per_op": 10}),
		}}
		if report, regressed := compare(old, fresh, 0.15); regressed {
			t.Fatalf("steady throughput failed the gate via the ns/op column:\n%s", report)
		}
	})
}

// TestCompareAllocsGate pins the secondary allocs/op gate: a committed 0
// allocs/op is a hard budget (one allocation fails regardless of the
// throughput column), nonzero baselines get the fractional tolerance, and
// the gate stays out of the way when either snapshot lacks the column.
func TestCompareAllocsGate(t *testing.T) {
	bench := func(name string, metrics map[string]float64) Benchmark {
		return Benchmark{Name: name, Procs: 1, Iterations: 1, Metrics: metrics}
	}

	t.Run("zero-alloc budget is hard", func(t *testing.T) {
		old := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkCollectIngest/binary", map[string]float64{"reports_per_s": 1_000_000, "allocs_per_op": 0}),
		}}
		fresh := &Snapshot{Benchmarks: []Benchmark{
			// Throughput steady, but the zero-alloc path now allocates.
			bench("BenchmarkCollectIngest/binary", map[string]float64{"reports_per_s": 1_000_000, "allocs_per_op": 1}),
		}}
		report, regressed := compare(old, fresh, 0.15)
		if !regressed {
			t.Fatalf("0 -> 1 allocs/op passed the gate:\n%s", report)
		}
		if !strings.Contains(report, "FAIL BenchmarkCollectIngest/binary: allocs_per_op 0 -> 1") {
			t.Fatalf("report missing the allocs FAIL line:\n%s", report)
		}
	})

	t.Run("nonzero baseline gets fractional tolerance", func(t *testing.T) {
		old := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkMeanIngest", map[string]float64{"ns_per_op": 100, "allocs_per_op": 10}),
		}}
		within := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkMeanIngest", map[string]float64{"ns_per_op": 100, "allocs_per_op": 11}),
		}}
		if report, regressed := compare(old, within, 0.15); regressed {
			t.Fatalf("10 -> 11 allocs/op failed a 15%% gate:\n%s", report)
		}
		over := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkMeanIngest", map[string]float64{"ns_per_op": 100, "allocs_per_op": 13}),
		}}
		if report, regressed := compare(old, over, 0.15); !regressed {
			t.Fatalf("10 -> 13 allocs/op passed a 15%% gate:\n%s", report)
		}
	})

	t.Run("absent column stays silent", func(t *testing.T) {
		old := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkPerturb", map[string]float64{"ns_per_op": 100}),
		}}
		fresh := &Snapshot{Benchmarks: []Benchmark{
			bench("BenchmarkPerturb", map[string]float64{"ns_per_op": 100, "allocs_per_op": 50}),
		}}
		report, regressed := compare(old, fresh, 0.15)
		if regressed {
			t.Fatalf("allocs gate fired without a committed baseline:\n%s", report)
		}
		if strings.Contains(report, "allocs_per_op") {
			t.Fatalf("allocs line rendered without both columns:\n%s", report)
		}
	})
}
