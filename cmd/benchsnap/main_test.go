package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCollectIngest/single-mutex         	   35192	     33457 ns/op	     29889 reports/s	    8814 B/op	     105 allocs/op
BenchmarkCollectIngest/batched-sharded      	     678	   1807064 ns/op	    283333 reports/s	  496883 B/op	    4031 allocs/op
BenchmarkGRRPerturb-8   	12345678	        95.31 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	5.912s
`

func TestParse(t *testing.T) {
	snap, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Goos != "linux" || snap.Goarch != "amd64" || snap.Pkg != "repro" {
		t.Fatalf("header %+v", snap)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	single := snap.Benchmarks[0]
	if single.Name != "BenchmarkCollectIngest/single-mutex" || single.Iterations != 35192 {
		t.Fatalf("first benchmark %+v", single)
	}
	if single.Metrics["reports_per_s"] != 29889 {
		t.Fatalf("reports/s metric %v", single.Metrics)
	}
	if single.Metrics["ns_per_op"] != 33457 || single.Metrics["allocs_per_op"] != 105 {
		t.Fatalf("standard metrics %v", single.Metrics)
	}
	grr := snap.Benchmarks[2]
	if grr.Name != "BenchmarkGRRPerturb" || grr.Procs != 8 {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", grr)
	}
	if grr.Metrics["ns_per_op"] != 95.31 {
		t.Fatalf("fractional ns/op %v", grr.Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, err := parseLine("BenchmarkX"); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := parseLine("BenchmarkX notanumber 12 ns/op"); err == nil {
		t.Fatal("bad iteration count accepted")
	}
	if _, err := parseLine("BenchmarkX 10 twelve ns/op"); err == nil {
		t.Fatal("bad metric value accepted")
	}
}

// TestParseLineSubBenchmarkDash guards the name/procs split: a trailing
// -N is a procs suffix, but a dash inside a sub-benchmark name is not.
func TestParseLineSubBenchmarkDash(t *testing.T) {
	b, err := parseLine("BenchmarkCollectIngest/batched-sharded 678 1807064 ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "BenchmarkCollectIngest/batched-sharded" || b.Procs != 1 {
		t.Fatalf("parsed %+v", b)
	}
}
