// Command benchsnap converts `go test -bench` output into a machine-
// readable JSON snapshot, so the repo's performance trajectory can be
// tracked commit over commit. It reads benchmark output on stdin and writes
// JSON to -out (default stdout):
//
//	go test -run='^$' -bench='CollectIngest|Perturb' -benchmem . | benchsnap -out BENCH_ingest.json
//
// Every metric column is kept, including custom b.ReportMetric units like
// reports/s, keyed by unit with '/' flattened to '_per_'.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkCollectIngest/batched-sharded".
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the output document.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	flag.Parse()

	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		log.Fatal("benchsnap: no benchmark lines on stdin")
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			snap.Benchmarks = append(snap.Benchmarks, *b)
		}
	}
	return snap, sc.Err()
}

// parseLine parses one result line of the standard benchmark output format:
//
//	BenchmarkName-8   1234   56.7 ns/op   89 B/op   1 allocs/op   1000 reports/s
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("benchsnap: short benchmark line %q", line)
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("benchsnap: iteration count in %q: %w", line, err)
	}
	b := &Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchsnap: metric value in %q: %w", line, err)
		}
		unit := strings.ReplaceAll(fields[i+1], "/", "_per_")
		b.Metrics[unit] = v
	}
	return b, nil
}
