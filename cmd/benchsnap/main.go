// Command benchsnap converts `go test -bench` output into a machine-
// readable JSON snapshot, so the repo's performance trajectory can be
// tracked commit over commit. It reads benchmark output on stdin and writes
// JSON to -out (default stdout):
//
//	go test -run='^$' -bench='CollectIngest|Perturb' -benchmem . | benchsnap -out BENCH_ingest.json
//
// Every metric column is kept, including custom b.ReportMetric units like
// reports/s, keyed by unit with '/' flattened to '_per_'.
//
// With -compare it becomes the repo's bench-regression gate instead: the
// fresh run on stdin is diffed against a committed snapshot, and the exit
// status is nonzero when any shared benchmark regressed beyond -threshold
// (fraction, default 0.15). Throughput (reports/s, higher is better) is the
// preferred comparison metric, falling back to ns/op (lower is better).
// When both snapshots also carry allocs/op it is gated as a secondary
// metric (lower is better) — a benchmark whose committed snapshot says 0
// allocs/op fails on ANY allocation, which is what pins the binary ingest
// path's zero-alloc budget. A benchmark present in the old snapshot but
// missing from the fresh run is a warning, not a failure, so renames do not
// wedge CI. In compare mode -out
// names the human-readable report file (default stdout):
//
//	go test -run='^$' -bench='CollectIngest|MeanIngest' -benchmem . | \
//	  benchsnap -compare BENCH_ingest.json -threshold 0.15 -out bench-compare.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped,
	// e.g. "BenchmarkCollectIngest/batched-sharded".
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the output document.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout); the comparison report in -compare mode")
	comparePath := flag.String("compare", "", "committed snapshot to diff the fresh run against (enables gate mode)")
	threshold := flag.Float64("threshold", 0.15, "allowed regression fraction in -compare mode (0.15 = 15%)")
	flag.Parse()

	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		log.Fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		log.Fatal("benchsnap: no benchmark lines on stdin")
	}
	if *comparePath != "" {
		if *threshold <= 0 {
			log.Fatal("benchsnap: -threshold must be positive")
		}
		blob, err := os.ReadFile(*comparePath)
		if err != nil {
			log.Fatal(err)
		}
		var old Snapshot
		if err := json.Unmarshal(blob, &old); err != nil {
			log.Fatalf("benchsnap: parse %s: %v", *comparePath, err)
		}
		report, regressed := compare(&old, snap, *threshold)
		if *out == "" {
			os.Stdout.WriteString(report)
		} else {
			if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "benchsnap: wrote comparison report to %s\n", *out)
		}
		if regressed {
			fmt.Fprintf(os.Stderr, "benchsnap: FAIL — at least one benchmark regressed more than %.0f%% vs %s\n",
				*threshold*100, *comparePath)
			os.Exit(1)
		}
		return
	}
	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// compare diffs a fresh run against a committed snapshot and renders the
// verdict table. A benchmark regresses when its preferred metric —
// reports/s when both runs report it (higher is better), ns/op otherwise
// (lower is better) — moved past the threshold fraction in the bad
// direction. Benchmarks only in one snapshot are listed as warnings;
// improvements and in-tolerance drift are OK lines.
func compare(old, fresh *Snapshot, threshold float64) (report string, regressed bool) {
	freshByName := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshByName[b.Name] = b
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "bench comparison (threshold %.0f%%)\n", threshold*100)
	if old.CPU != "" || fresh.CPU != "" {
		fmt.Fprintf(&sb, "  old cpu: %s\n  new cpu: %s\n", old.CPU, fresh.CPU)
	}
	seen := make(map[string]bool, len(old.Benchmarks))
	for _, ob := range old.Benchmarks {
		seen[ob.Name] = true
		nb, ok := freshByName[ob.Name]
		if !ok {
			fmt.Fprintf(&sb, "WARN %s: missing from fresh run\n", ob.Name)
			continue
		}
		metric, higherBetter := pickMetric(ob, nb)
		if metric == "" {
			fmt.Fprintf(&sb, "WARN %s: no shared comparable metric\n", ob.Name)
			continue
		}
		ov, nv := ob.Metrics[metric], nb.Metrics[metric]
		if ov == 0 {
			fmt.Fprintf(&sb, "WARN %s: old %s is zero\n", ob.Name, metric)
			continue
		}
		delta := nv/ov - 1 // signed fractional change
		bad := false
		if higherBetter {
			bad = nv < ov*(1-threshold)
		} else {
			bad = nv > ov*(1+threshold)
		}
		verdict := "OK  "
		if bad {
			verdict, regressed = "FAIL", true
		}
		fmt.Fprintf(&sb, "%s %s: %s %.4g -> %.4g (%+.1f%%)\n", verdict, ob.Name, metric, ov, nv, delta*100)
		if line, bad := compareAllocs(ob, nb, metric, threshold); line != "" {
			sb.WriteString(line)
			regressed = regressed || bad
		}
	}
	for _, nb := range fresh.Benchmarks {
		if !seen[nb.Name] {
			fmt.Fprintf(&sb, "NEW  %s: not in the committed snapshot\n", nb.Name)
		}
	}
	return sb.String(), regressed
}

// compareAllocs applies the secondary allocs/op gate (lower is better) when
// both runs report it and it was not already the primary metric. A
// committed 0 allocs/op is a budget, not a baseline: any fresh allocation
// fails regardless of threshold, since a fraction of zero tolerates
// nothing and the zero-alloc paths are exactly the ones worth pinning.
func compareAllocs(ob, nb Benchmark, primary string, threshold float64) (line string, bad bool) {
	const key = "allocs_per_op"
	if primary == key {
		return "", false
	}
	ov, okOld := ob.Metrics[key]
	nv, okNew := nb.Metrics[key]
	if !okOld || !okNew {
		return "", false
	}
	if ov == 0 {
		bad = nv > 0
	} else {
		bad = nv > ov*(1+threshold)
	}
	verdict := "OK  "
	if bad {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s %s: %s %.4g -> %.4g\n", verdict, ob.Name, key, ov, nv), bad
}

// pickMetric chooses the comparison metric both runs report: throughput
// when available, time per op otherwise.
func pickMetric(a, b Benchmark) (metric string, higherBetter bool) {
	for _, m := range []struct {
		key    string
		higher bool
	}{{"reports_per_s", true}, {"ns_per_op", false}} {
		if _, ok := a.Metrics[m.key]; !ok {
			continue
		}
		if _, ok := b.Metrics[m.key]; !ok {
			continue
		}
		return m.key, m.higher
	}
	return "", false
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			snap.Benchmarks = append(snap.Benchmarks, *b)
		}
	}
	return snap, sc.Err()
}

// parseLine parses one result line of the standard benchmark output format:
//
//	BenchmarkName-8   1234   56.7 ns/op   89 B/op   1 allocs/op   1000 reports/s
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("benchsnap: short benchmark line %q", line)
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("benchsnap: iteration count in %q: %w", line, err)
	}
	b := &Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("benchsnap: metric value in %q: %w", line, err)
		}
		unit := strings.ReplaceAll(fields[i+1], "/", "_per_")
		b.Metrics[unit] = v
	}
	return b, nil
}
