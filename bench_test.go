// Benchmarks that regenerate every table and figure of the paper at reduced
// scale (one benchmark per artifact — run `cmd/mcimbench` for full-size
// tables), plus micro-benchmarks of the perturbation mechanisms that
// dominate the pipelines' cost.
package mcim_test

import (
	"testing"

	mcim "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/topk"
	"repro/internal/xrand"
)

// benchExperiment runs a registered experiment once per iteration at a
// small fixed scale so the full suite stays laptop-sized.
func benchExperiment(b *testing.B, id string, scale float64, trials int) {
	b.Helper()
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiment.Config{Seed: 1, Scale: scale, Trials: trials}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", 1, 1) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", 1, 1) }
func BenchmarkFig5a(b *testing.B)  { benchExperiment(b, "fig5a", 0.005, 10) }
func BenchmarkFig5b(b *testing.B)  { benchExperiment(b, "fig5b", 0.005, 10) }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a", 0.05, 1) }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b", 0.05, 1) }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a", 0.005, 1) }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b", 0.005, 1) }
func BenchmarkFig7c(b *testing.B)  { benchExperiment(b, "fig7c", 0.005, 1) }
func BenchmarkFig7d(b *testing.B)  { benchExperiment(b, "fig7d", 0.005, 1) }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8", 0.005, 1) }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9", 0.005, 1) }
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a", 0.002, 1) }
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b", 0.002, 1) }
func BenchmarkFig10c(b *testing.B) { benchExperiment(b, "fig10c", 0.002, 1) }
func BenchmarkFig10d(b *testing.B) { benchExperiment(b, "fig10d", 0.002, 1) }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", 0.005, 1) }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11", 0.002, 1) }
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a", 0.005, 1) }
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b", 0.005, 1) }
func BenchmarkFig12c(b *testing.B) { benchExperiment(b, "fig12c", 0.005, 1) }
func BenchmarkFig12d(b *testing.B) { benchExperiment(b, "fig12d", 0.005, 1) }
func BenchmarkExt1(b *testing.B)   { benchExperiment(b, "ext1", 0.02, 1) }
func BenchmarkExt2(b *testing.B)   { benchExperiment(b, "ext2", 0.005, 1) }

// --- mechanism micro-benchmarks -------------------------------------------

func BenchmarkGRRPerturb(b *testing.B) {
	m, err := mcim.NewGRR(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(i%1024, r)
	}
}

func BenchmarkOUEPerturb1k(b *testing.B) {
	m, err := mcim.NewOUE(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(i%1024, r)
	}
}

func BenchmarkOUEPerturb64k(b *testing.B) {
	// The geometric-skipping fast path: cost scales with d·q, not d.
	m, err := mcim.NewOUE(65536, 4)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(i%65536, r)
	}
}

func BenchmarkOLHPerturb(b *testing.B) {
	m, err := mcim.NewOLH(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Perturb(i%1024, r)
	}
}

func BenchmarkVPPerturb(b *testing.B) {
	vp, err := mcim.NewVP(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := i % 1025
		if v == 1024 {
			v = mcim.Invalid
		}
		vp.Perturb(v, r)
	}
}

func BenchmarkCPPerturb(b *testing.B) {
	cp, err := mcim.NewCP(5, 1024, 2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cp.Perturb(mcim.Pair{Class: i % 5, Item: i % 1024}, r)
	}
}

// --- pipeline benchmarks ---------------------------------------------------

func benchFrequency(b *testing.B, est core.FrequencyEstimator) {
	b.Helper()
	data := dataset.SYN1(0.002)
	r := xrand.New(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(data, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrequencyHEC(b *testing.B) { benchFrequency(b, core.NewHEC(1)) }
func BenchmarkFrequencyPTJ(b *testing.B) { benchFrequency(b, core.NewPTJ(1)) }
func BenchmarkFrequencyPTS(b *testing.B) {
	pts, err := core.NewPTS(1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	benchFrequency(b, pts)
}
func BenchmarkFrequencyPTSCP(b *testing.B) {
	cp, err := core.NewPTSCP(1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	benchFrequency(b, cp)
}

func benchMiner(b *testing.B, m topk.Miner) {
	b.Helper()
	data, err := dataset.Anime(3, 0.002)
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Mine(data, 10, 4, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinerHEC(b *testing.B) { benchMiner(b, topk.NewHEC(topk.Baseline())) }
func BenchmarkMinerPTJ(b *testing.B) { benchMiner(b, topk.NewPTJ(topk.Baseline())) }
func BenchmarkMinerPTSBaseline(b *testing.B) {
	benchMiner(b, topk.NewPTS(topk.Baseline()))
}
func BenchmarkMinerPTSOptimized(b *testing.B) {
	benchMiner(b, topk.NewPTS(topk.Optimized()))
}
